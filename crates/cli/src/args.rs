//! Minimal `--flag value` argument handling.

use crate::{err, CliError};

/// Parsed arguments: positional subcommand (+ optional action word, as in
/// `sweep run`) + flag map.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// The subcommand (first bare word).
    pub command: String,
    /// A second bare word right after the subcommand (`sweep run`), if any.
    /// Commands that take no action reject it at dispatch.
    pub action: Option<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    /// Parse a raw argument list (without the program name).
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Args, CliError> {
        let mut it = raw.into_iter().peekable();
        let command = it.next().unwrap_or_default();
        if command.starts_with("--") {
            return Err(err(format!("expected a subcommand before '{command}'")));
        }
        let action = match it.peek() {
            Some(tok) if !tok.starts_with("--") => Some(it.next().expect("peeked")),
            _ => None,
        };
        let mut flags = Vec::new();
        while let Some(tok) = it.next() {
            let Some(name) = tok.strip_prefix("--") else {
                return Err(err(format!("unexpected positional argument '{tok}'")));
            };
            // A flag's value is the next token unless it is another flag.
            let value = match it.peek() {
                Some(v) if !v.starts_with("--") => Some(it.next().expect("peeked")),
                _ => None,
            };
            flags.push((name.to_string(), value));
        }
        Ok(Args {
            command,
            action,
            flags,
        })
    }

    /// String value of a flag.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    /// Presence of a bare flag (with or without a value).
    pub fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    /// Required string flag.
    pub fn require(&self, name: &str) -> Result<&str, CliError> {
        self.get(name)
            .ok_or_else(|| err(format!("missing required flag --{name}")))
    }

    /// Parse a flag as a number (with default).
    pub fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, CliError> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| err(format!("--{name}: cannot parse '{v}'"))),
        }
    }

    /// Parse a required numeric flag.
    pub fn require_num<T: std::str::FromStr>(&self, name: &str) -> Result<T, CliError> {
        let v = self.require(name)?;
        v.parse()
            .map_err(|_| err(format!("--{name}: cannot parse '{v}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Result<Args, CliError> {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn parses_command_and_flags() {
        let a = args("run --topo mesh:4x4 --nodes 8 --temporal").unwrap();
        assert_eq!(a.command, "run");
        assert_eq!(a.get("topo"), Some("mesh:4x4"));
        assert_eq!(a.num::<usize>("nodes", 0).unwrap(), 8);
        assert!(a.has("temporal"));
        assert!(!a.has("trace"));
    }

    #[test]
    fn missing_required_flag_errors() {
        let a = args("run --nodes 8").unwrap();
        assert!(a.require("topo").is_err());
        assert!(a.require_num::<u64>("bytes").is_err());
    }

    #[test]
    fn bad_number_errors() {
        let a = args("run --nodes eight").unwrap();
        assert!(a.num::<usize>("nodes", 1).is_err());
    }

    #[test]
    fn rejects_positional_noise() {
        // A second bare word parses as the action (dispatch rejects it for
        // commands that take none); a third is always noise.
        assert_eq!(args("run mesh").unwrap().action.as_deref(), Some("mesh"));
        assert!(args("sweep run extra").is_err());
        assert!(args("--topo mesh:4x4").is_err());
    }

    #[test]
    fn parses_an_action_word() {
        let a = args("sweep run --spec s.json --jobs 4").unwrap();
        assert_eq!(a.command, "sweep");
        assert_eq!(a.action.as_deref(), Some("run"));
        assert_eq!(a.get("spec"), Some("s.json"));
        assert!(args("sweep --spec s.json").unwrap().action.is_none());
    }

    #[test]
    fn default_when_absent() {
        let a = args("run").unwrap();
        assert_eq!(a.num::<u64>("seed", 1997).unwrap(), 1997);
    }
}
