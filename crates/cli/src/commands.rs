//! The subcommand implementations.  Each returns the text it would print so
//! tests can assert on output.

use std::fmt::Write as _;

use flitsim::SimConfig;
use mtree::{dot, MulticastTree, Schedule, SplitStrategy};
use optmc::experiments::{random_placement, run_trials};
use optmc::{check_schedule, check_schedule_windowed, measure, OccupancyParams, RunOptions};
use pcm::Time;

use crate::args::Args;
use crate::spec::{discipline_for, parse_algorithm, parse_topology};
use crate::{err, CliError};

/// Dispatch a parsed argument set.
pub fn dispatch(a: &Args) -> Result<String, CliError> {
    // Only `sweep` takes an action word (`sweep run` etc.).
    if a.command != "sweep" {
        if let Some(action) = &a.action {
            return Err(err(format!("unexpected positional argument '{action}'")));
        }
    }
    match a.command.as_str() {
        "tree" => cmd_tree(a),
        "check" => cmd_check(a),
        "run" => cmd_run(a),
        "inspect" => cmd_inspect(a),
        "compare" => cmd_compare(a),
        "calibrate" => cmd_calibrate(a),
        "gather" => cmd_gather(a),
        "growth" => cmd_growth(a),
        "sweep" => crate::sweep::cmd_sweep(a),
        "workload" => crate::sweep::cmd_workload(a),
        "serve" => crate::serve::cmd_serve(a),
        "plan" => crate::serve::cmd_plan(a),
        "" | "help" => Ok(crate::USAGE.to_string()),
        other => Err(err(format!(
            "unknown subcommand '{other}'\n\n{}",
            crate::USAGE
        ))),
    }
}

/// `optmc tree` — the OPT-tree DP table and (optionally) the DOT tree.
fn cmd_tree(a: &Args) -> Result<String, CliError> {
    let hold: Time = a.require_num("hold")?;
    let end: Time = a.require_num("end")?;
    let k: usize = a.require_num("k")?;
    if k == 0 {
        return Err(err("--k must be at least 1"));
    }
    if hold > end {
        return Err(err(format!(
            "model requires t_hold <= t_end ({hold} > {end})"
        )));
    }
    let src: usize = a.num("src", 0)?;
    if src >= k {
        return Err(err(format!("--src {src} out of range 0..{k}")));
    }
    let tab = mtree::opt::opt_table(hold, end, k);
    let mut out = String::new();
    let _ = writeln!(out, "OPT-tree DP for t_hold={hold}, t_end={end}:");
    let _ = writeln!(out, "{:>6} {:>10} {:>6}", "i", "t[i]", "j_i");
    for i in 1..=k {
        if i >= 2 {
            let _ = writeln!(out, "{:>6} {:>10} {:>6}", i, tab.t(i), tab.j(i));
        } else {
            let _ = writeln!(out, "{:>6} {:>10} {:>6}", i, tab.t(i), "-");
        }
    }
    let strat = SplitStrategy::Opt(tab);
    let sched = Schedule::build(k, src, &strat, hold, end);
    let _ = writeln!(
        out,
        "\nlatency {} (binomial would be {})",
        sched.latency(),
        SplitStrategy::Binomial.latency(hold, end, k)
    );
    if a.has("dot") {
        let tree = MulticastTree::from_schedule(&sched);
        let _ = write!(out, "\n{}", dot::to_dot(&tree, None));
    }
    Ok(out)
}

/// `optmc check` — static verification with structured diagnostics:
/// channel-dependency-graph deadlock analysis and routing lints always;
/// with `--alg`, schedule contention certification (windowed occupancy by
/// default, `--conservative` for the interval approximation) plus the
/// differential oracle against the instrumented simulator; with `--set`,
/// certification of a whole workload-style schedule *set* with a plan
/// certificate.  Exits nonzero when any error-level finding exists.
fn cmd_check(a: &Args) -> Result<String, CliError> {
    use netcheck::{Diagnostic, Severity};

    let spec = a.require("topo")?;
    let topo = parse_topology(spec)?;
    let discipline = discipline_for(spec)?;
    let mut report = netcheck::check_topology(topo.as_ref(), &discipline);

    if a.has("set") {
        return cmd_check_set(a, topo.as_ref(), report);
    }

    if let Some(alg_name) = a.get("alg") {
        let alg = parse_algorithm(alg_name)?;
        let n = topo.graph().n_nodes();
        let k: usize = a.num("nodes", n)?;
        if k > n || k < 2 {
            return Err(err(format!("--nodes must be in 2..={n}")));
        }
        let bytes: u64 = a.num("bytes", 4096)?;
        let seed: u64 = a.num("seed", 1997)?;
        let mut cfg = build_cfg(a)?;
        // The windowed replay and the differential oracle are exact only
        // for deterministic routing; adaptivity is disabled for the check.
        cfg.adaptive = false;
        let mut parts = random_placement(n, k, seed);
        if let Some(s) = a.get("src") {
            let s: u32 = s
                .parse()
                .map_err(|_| err(format!("--src: cannot parse '{s}'")))?;
            if s as usize >= n {
                return Err(err(format!("--src {s} out of range 0..{n}")));
            }
            // Pin the multicast source: move it to the front of the
            // placement (swapping in for the seed-chosen source if absent).
            match parts.iter().position(|&p| p.0 == s) {
                Some(i) => parts.swap(0, i),
                None => parts[0] = topo::NodeId(s),
            }
        }
        let src = parts[0];
        let hops = optmc::runner::nominal_hops(topo.as_ref(), &parts, src);
        let (hold, end) = cfg.effective_pair_ports(hops, bytes, topo.graph().ports() as u64);
        let chain = alg.chain(topo.as_ref(), &parts, src);
        let splits = alg.splits(hold, end, k.max(2));
        let schedule = Schedule::build(k, chain.src_pos(), &splits, hold, end);
        report.target = format!(
            "{} on {} (k={k}, {bytes} bytes, seed {seed})",
            alg.display_name(topo.as_ref()),
            topo.name()
        );

        if a.has("conservative") {
            // Legacy interval approximation: sound for the mesh, but
            // over-approximates worm lifetimes (it can flag BMIN schedules
            // the engine runs clean), so no simulator agreement is demanded.
            let conflicts = check_schedule(topo.as_ref(), &chain, &schedule);
            if conflicts.is_empty() {
                report.push(Diagnostic::new(
                    Severity::Info,
                    "NC0202",
                    format!(
                        "conservative interval analysis: no two concurrently-live sends \
                         share a channel ({} sends)",
                        schedule.sends.len()
                    ),
                ));
            } else {
                let c = conflicts[0];
                report.push(
                    Diagnostic::new(
                        Severity::Error,
                        "NC0201",
                        format!(
                            "conservative interval analysis finds {} conflicting send pairs \
                             (may over-approximate; the windowed default is exact)",
                            conflicts.len()
                        ),
                    )
                    .with_nodes(vec![
                        chain.node(schedule.sends[c.send_a].from),
                        chain.node(schedule.sends[c.send_a].to),
                        chain.node(schedule.sends[c.send_b].from),
                        chain.node(schedule.sends[c.send_b].to),
                    ])
                    .with_channels(vec![c.channel]),
                );
            }
        } else {
            let params = OccupancyParams::from_config(&cfg, bytes);
            let conflicts = check_schedule_windowed(topo.as_ref(), &chain, &schedule, &params)
                .map_err(|e| err(format!("cannot materialise schedule paths: {e}")))?;
            if conflicts.is_empty() {
                report.push(Diagnostic::new(
                    Severity::Info,
                    "NC0202",
                    format!(
                        "windowed occupancy analysis certifies the schedule contention-free \
                         ({} sends, deterministic routing)",
                        schedule.sends.len()
                    ),
                ));
            } else {
                let c = conflicts[0];
                report.push(
                    Diagnostic::new(
                        Severity::Error,
                        "NC0201",
                        format!(
                            "windowed occupancy analysis finds {} conflicting \
                             (send pair, channel) overlaps; first overlap spans cycles {}..{}",
                            conflicts.len(),
                            c.from,
                            c.until
                        ),
                    )
                    .with_nodes(vec![
                        chain.node(schedule.sends[c.send_a].from),
                        chain.node(schedule.sends[c.send_a].to),
                        chain.node(schedule.sends[c.send_b].from),
                        chain.node(schedule.sends[c.send_b].to),
                    ])
                    .with_channels(vec![c.channel]),
                );
            }

            // Differential leg: the instrumented simulator must agree with
            // the static verdict, and the run must uphold every engine
            // invariant.
            let (validator, handle) = netcheck::Validator::new(topo.graph());
            let out = optmc::run_multicast_observed(
                topo.as_ref(),
                &cfg,
                alg,
                &parts,
                src,
                bytes,
                &RunOptions::default(),
                Some(validator.into_sink()),
            );
            let blocked = out.sim.blocked_cycles;
            let validation = handle.summary();
            if !validation.ok() {
                report.push(
                    Diagnostic::new(
                        Severity::Error,
                        "NC0301",
                        format!(
                            "simulator run violated {} engine invariant(s); first: {}",
                            validation.n_violations.max(validation.outstanding),
                            validation
                                .violations
                                .first()
                                .map_or("channels left held at finish", String::as_str)
                        ),
                    )
                    .with_help("this is a simulator bug, not a schedule property"),
                );
            }
            if conflicts.is_empty() == (blocked == 0) {
                report.push(Diagnostic::new(
                    Severity::Info,
                    "NC0203",
                    format!(
                        "differential oracle agrees: {} static conflicts vs {} blocked cycles \
                         in the simulator",
                        conflicts.len(),
                        blocked
                    ),
                ));
            } else {
                report.push(
                    Diagnostic::new(
                        Severity::Error,
                        "NC0302",
                        format!(
                            "static analysis and simulator disagree: {} conflicts predicted \
                             but {} blocked cycles observed",
                            conflicts.len(),
                            blocked
                        ),
                    )
                    .with_help("one of the windowed replay or the engine timing is wrong"),
                );
            }
        }
    }

    render_report(a, report, "")
}

/// `optmc check --set` — schedule-*set* certification: build a
/// workload-style set of `--count` multicasts (the same generator as
/// `optmc workload`, or node-disjoint pool-chunked groups with
/// `--disjoint`), certify the combined channel-occupancy windows, emit a
/// machine-checkable plan certificate (re-verified independently, written
/// to `--cert-out`), and run the joint differential oracle.
fn cmd_check_set(
    a: &Args,
    topo: &dyn topo::Topology,
    mut report: netcheck::Report,
) -> Result<String, CliError> {
    use campaign::workload::generate_specs;
    use campaign::WorkloadSpec;
    use netcheck::{Diagnostic, PlanCertificate, ScheduleSet, Severity};

    let alg = parse_algorithm(a.get("alg").unwrap_or("opt-arch"))?;
    let n = topo.graph().n_nodes();
    let count: usize = a.num("count", 4)?;
    if count == 0 {
        return Err(err("--count must be at least 1"));
    }
    let k: usize = a.require_num("nodes")?;
    if k > n || k < 2 {
        return Err(err(format!("--nodes must be in 2..={n}")));
    }
    let bytes: u64 = a.num("bytes", 4096)?;
    let seed: u64 = a.num("seed", 1997)?;
    let arrivals = crate::sweep::parse_arrivals(a)?;
    let mut cfg = build_cfg(a)?;
    // Set certification is exact only under deterministic routing.
    cfg.adaptive = false;

    let mut specs = generate_specs(
        n,
        &WorkloadSpec {
            count,
            k,
            bytes,
            arrivals,
            seed,
        },
    );
    if a.has("disjoint") {
        // Same arrival process, but the groups are carved from one
        // shuffled node pool so members are pairwise node-disjoint — the
        // regime where a clean certificate is attainable.
        if k * count > n {
            return Err(err(format!(
                "--disjoint needs --nodes x --count <= {n} (got {})",
                k * count
            )));
        }
        let pool = random_placement(n, k * count, seed);
        for (chunk, s) in pool.chunks(k).zip(specs.iter_mut()) {
            s.src = chunk[0];
            s.participants = chunk.to_vec();
        }
    }
    let set = ScheduleSet {
        specs,
        algorithm: alg,
    };

    let analysis = netcheck::analyze_set(topo, &cfg, &set)
        .map_err(|e| err(format!("cannot materialise member schedule paths: {e}")))?;
    let set_report = netcheck::report_set(topo, &set, &analysis);
    report.target = format!(
        "schedule set: {} (k={k}, {bytes} bytes, seed {seed})",
        set_report.target
    );
    for d in set_report.diagnostics {
        report.push(d);
    }

    // The certificate is the machine-checkable artifact; its verifier
    // re-derives the verdict from the interval population alone, so a
    // prover bug shows up as a verification failure, not a silent pass.
    let cert = PlanCertificate::from_analysis(topo, &set, &analysis);
    match cert.verify() {
        Ok(()) => report.push(Diagnostic::new(
            Severity::Info,
            "NC0213",
            format!(
                "plan certificate re-verified independently: {} members, {} channel \
                 windows, verdict '{}'",
                cert.multicasts.len(),
                cert.windows.len(),
                if cert.clean { "clean" } else { "contended" }
            ),
        )),
        Err(e) => report.push(
            Diagnostic::new(
                Severity::Error,
                "NC0213",
                format!("plan certificate failed independent verification: {e}"),
            )
            .with_help("prover and verifier disagree — a netcheck bug, not a schedule property"),
        ),
    }
    let mut extra = String::new();
    if let Some(path) = a.get("cert-out") {
        std::fs::write(path, cert.to_json()).map_err(|e| err(format!("--cert-out {path}: {e}")))?;
        let _ = writeln!(extra, "plan certificate written to {path}");
    }

    // Differential leg: the joint simulation must agree with the static
    // verdict (strict biconditional for pairwise-independent members).
    let case = netcheck::differential_set_case(topo, &cfg, &set);
    if case.agree {
        report.push(Diagnostic::new(
            Severity::Info,
            "NC0203",
            format!(
                "differential set oracle agrees{}: {} conflicts predicted vs {} blocked \
                 cycles in the joint simulation",
                if case.strict {
                    ""
                } else {
                    " (sound direction only; members share nodes)"
                },
                case.conflicts,
                case.blocked_cycles
            ),
        ));
    } else {
        report.push(
            Diagnostic::new(
                Severity::Error,
                "NC0302",
                format!(
                    "set analysis and joint simulation disagree: {} conflicts predicted \
                     but {} blocked cycles observed",
                    case.conflicts, case.blocked_cycles
                ),
            )
            .with_help("one of the shifted window replay or the engine timing is wrong"),
        );
    }

    render_report(a, report, &extra)
}

/// Normalize, render (`--json` or human), and pick the exit arm: any
/// error-level diagnostic makes the whole check fail.  `extra` carries
/// human-only trailer lines (artifact paths); it never contaminates JSON.
fn render_report(a: &Args, mut report: netcheck::Report, extra: &str) -> Result<String, CliError> {
    report.normalize();
    let text = if a.has("json") {
        report.to_json()
    } else {
        format!("{}{extra}", report.render_human())
    };
    if report.has_errors() {
        Err(CliError(text))
    } else {
        Ok(text)
    }
}

fn build_cfg(a: &Args) -> Result<SimConfig, CliError> {
    let mut cfg = SimConfig::paragon_like();
    cfg.addr_bytes = a.num("addr-bytes", cfg.addr_bytes)?;
    cfg.buffer_flits = a.num("buffer-flits", cfg.buffer_flits)?;
    cfg.shards = a.num("shards", cfg.shards)?;
    if cfg.shards == 0 {
        return Err(err("--shards must be at least 1"));
    }
    if a.has("no-adaptive") {
        cfg.adaptive = false;
    }
    if a.has("trace") {
        cfg.trace = true;
    }
    if let Some(limit) = a.get("trace-limit") {
        let limit: usize = limit
            .parse()
            .map_err(|_| err(format!("--trace-limit: cannot parse '{limit}'")))?;
        cfg.trace_limit = Some(limit);
    }
    Ok(cfg)
}

/// `optmc run` — one multicast, full detail.
fn cmd_run(a: &Args) -> Result<String, CliError> {
    let topo = parse_topology(a.require("topo")?)?;
    let alg = parse_algorithm(a.require("alg")?)?;
    let k: usize = a.require_num("nodes")?;
    let bytes: u64 = a.require_num("bytes")?;
    let seed: u64 = a.num("seed", 1997)?;
    let n = topo.graph().n_nodes();
    if k > n {
        return Err(err(format!("--nodes {k} exceeds the topology's {n} nodes")));
    }
    if k < 2 {
        return Err(err("--nodes must be at least 2"));
    }
    let cfg = build_cfg(a)?;
    let opts = RunOptions {
        temporal: a.has("temporal"),
        ..RunOptions::default()
    };
    let parts = random_placement(n, k, seed);
    let sharded_before = flitsim::metrics::SHARDED_RUNS.get();
    // `--counters`: attach the counting observer — the one observer arm
    // the sharded engine accumulates per shard and merges exactly, so the
    // differential gate can exercise observed sharded runs.
    let observer = a.has("counters").then(flitsim::TraceSink::counters);
    let out = optmc::run_multicast_observed(
        topo.as_ref(),
        &cfg,
        alg,
        &parts,
        parts[0],
        bytes,
        &opts,
        observer,
    );

    // `--fingerprint`: print the canonical SimResult JSON and nothing else
    // — the substrate of the sequential-vs-sharded differential gate in
    // scripts/check.sh.  A sharded invocation that silently fell back to
    // the sequential engine would make that comparison vacuous, so it is
    // an error here, naming the engine's concrete fallback reason.
    if a.has("fingerprint") {
        if cfg.shards > 1 && flitsim::metrics::SHARDED_RUNS.get() == sharded_before {
            let reason = flitsim::metrics::last_shard_fallback()
                .unwrap_or("workload below the conservative-window floor");
            return Err(err(format!(
                "--shards {} requested but the sharded engine did not engage: {reason}",
                cfg.shards
            )));
        }
        return Ok(format!("{}\n", out.sim.fingerprint()));
    }

    let chain = alg.chain(topo.as_ref(), &parts, parts[0]);
    let static_conflicts = check_schedule(topo.as_ref(), &chain, &out.schedule).len();
    let mut text = String::new();
    let _ = writeln!(
        text,
        "{} on {}: {} nodes, {} bytes, seed {}",
        alg.display_name(topo.as_ref()),
        topo.name(),
        k,
        bytes,
        seed
    );
    let _ = writeln!(
        text,
        "  model pair     t_hold={}, t_end={}",
        out.pair.0, out.pair.1
    );
    let _ = writeln!(text, "  analytic bound {}", out.analytic);
    let _ = writeln!(text, "  sim latency    {}", out.latency);
    let _ = writeln!(
        text,
        "  blocked        {} cycles in {} episodes",
        out.sim.blocked_cycles, out.sim.blocked_events
    );
    let _ = writeln!(
        text,
        "  static check   {} conflicting send pairs",
        static_conflicts
    );
    if cfg.trace {
        if out.sim.truncated {
            let _ = writeln!(
                text,
                "\nwarning: trace truncated at --trace-limit {} events; timeline is a prefix",
                out.sim.trace.len()
            );
        }
        let _ = writeln!(text, "\nbusiest channels:");
        let _ = write!(
            text,
            "{}",
            flitsim::trace::render_timeline(&out.sim.trace, topo.graph(), 8)
        );
    }
    Ok(text)
}

/// `optmc inspect` — one multicast under full observation: run report,
/// phase breakdown, the per-channel contention heatmap (`--heatmap`,
/// `--heatmap-out`), a deterministic telemetry snapshot
/// (`--telemetry-out`, JSON or `.prom` Prometheus text), and the trace
/// exported as Perfetto JSON, JSONL, or a textual timeline.
fn cmd_inspect(a: &Args) -> Result<String, CliError> {
    let topo = parse_topology(a.require("topo")?)?;
    let alg = parse_algorithm(a.require("alg")?)?;
    let k: usize = a.require_num("nodes")?;
    let bytes: u64 = a.require_num("bytes")?;
    let seed: u64 = a.num("seed", 1997)?;
    let format = a.get("format").unwrap_or("text");
    if !matches!(format, "perfetto" | "jsonl" | "text") {
        return Err(err(format!(
            "--format must be perfetto, jsonl or text (got '{format}')"
        )));
    }
    let n = topo.graph().n_nodes();
    if k > n || k < 2 {
        return Err(err(format!("--nodes must be in 2..={n}")));
    }
    let mut cfg = build_cfg(a)?;
    cfg.trace = true; // inspect exists to observe
    let opts = RunOptions {
        temporal: a.has("temporal"),
        ..RunOptions::default()
    };
    let parts = random_placement(n, k, seed);
    let trace_out = a.get("trace-out");

    // JSONL with a file destination streams straight to disk — the trace
    // never accumulates in memory.
    let sink = match (format, trace_out) {
        ("jsonl", Some(path)) => {
            let f =
                std::fs::File::create(path).map_err(|e| err(format!("--trace-out {path}: {e}")))?;
            Some(flitsim::TraceSink::jsonl(Box::new(
                std::io::BufWriter::new(f),
            )))
        }
        _ => None,
    };
    let out = optmc::run_multicast_observed(
        topo.as_ref(),
        &cfg,
        alg,
        &parts,
        parts[0],
        bytes,
        &opts,
        sink,
    );

    let mut text = String::new();
    let _ = writeln!(
        text,
        "{} on {}: {} nodes, {} bytes, seed {}",
        alg.display_name(topo.as_ref()),
        topo.name(),
        k,
        bytes,
        seed
    );
    let _ = writeln!(
        text,
        "  analytic bound {}  sim latency {}\n",
        out.analytic, out.latency
    );
    let _ = write!(text, "{}", flitsim::obs::render_report(&out.sim));

    if a.has("heatmap") {
        let _ = writeln!(text);
        let _ = write!(
            text,
            "{}",
            flitsim::heatmap::render(&out.sim, topo.graph(), 16, 48)
        );
    }
    // Side artifacts are written before the perfetto/jsonl stdout early
    // returns so they compose with every --format.
    if let Some(path) = a.get("heatmap-out") {
        let json = serde_json::to_string_pretty(&flitsim::heatmap::to_json(
            &out.sim,
            topo.graph(),
            16,
            48,
        ))
        .map_err(|e| err(format!("serializing heatmap: {e}")))?;
        std::fs::write(path, format!("{json}\n"))
            .map_err(|e| err(format!("--heatmap-out {path}: {e}")))?;
        let _ = writeln!(text, "\nheatmap JSON written to {path}");
    }
    if let Some(path) = a.get("telemetry-out") {
        crate::write_snapshot(path, &flitsim::metrics::run_snapshot(&out.sim))?;
        let _ = writeln!(text, "telemetry snapshot written to {path}");
    }
    // A plan-service snapshot (from `optmc serve --telemetry-out`) rendered
    // alongside the run report: cache counters and latency histograms.
    if let Some(path) = a.get("plan-telemetry") {
        let raw = std::fs::read_to_string(path)
            .map_err(|e| err(format!("--plan-telemetry {path}: {e}")))?;
        let snap = telem::TelemetrySnapshot::from_json(&raw)
            .map_err(|e| err(format!("--plan-telemetry {path}: {e}")))?;
        let _ = writeln!(text, "\nplan service ({path}):");
        let _ = write!(text, "{}", snap.render_text());
    }

    match format {
        "perfetto" => {
            let json = flitsim::perfetto::export_string(&out.sim, Some(topo.graph()));
            match trace_out {
                Some(path) => {
                    std::fs::write(path, &json)
                        .map_err(|e| err(format!("--trace-out {path}: {e}")))?;
                    let _ = writeln!(
                        text,
                        "\nperfetto trace written to {path} ({} bytes) — load at ui.perfetto.dev",
                        json.len()
                    );
                }
                None => return Ok(json),
            }
        }
        "jsonl" => match trace_out {
            Some(path) => {
                let _ = writeln!(
                    text,
                    "\njsonl trace streamed to {path} ({} events)",
                    out.sim.meta.trace_events
                );
            }
            None => {
                let mut lines = String::new();
                for ev in &out.sim.trace {
                    let line = serde_json::to_string(ev)
                        .map_err(|se| err(format!("serializing trace: {se}")))?;
                    let _ = writeln!(lines, "{line}");
                }
                return Ok(lines);
            }
        },
        _ => {
            let _ = writeln!(text, "\nbusiest channels:");
            let _ = write!(
                text,
                "{}",
                flitsim::trace::render_timeline(&out.sim.trace, topo.graph(), 8)
            );
            if let Some(path) = trace_out {
                std::fs::write(path, &text).map_err(|e| err(format!("--trace-out {path}: {e}")))?;
            }
        }
    }
    Ok(text)
}

/// `optmc compare` — all algorithms, averaged over trials.
fn cmd_compare(a: &Args) -> Result<String, CliError> {
    let topo = parse_topology(a.require("topo")?)?;
    let k: usize = a.require_num("nodes")?;
    let bytes: u64 = a.require_num("bytes")?;
    let trials: usize = a.num("trials", 16)?;
    let seed: u64 = a.num("seed", 1997)?;
    let n = topo.graph().n_nodes();
    if k > n || k < 2 {
        return Err(err(format!("--nodes must be in 2..={n}")));
    }
    let cfg = build_cfg(a)?;
    let mut text = format!(
        "{} — {k} nodes, {bytes} bytes, {trials} random placements\n\n",
        topo.name()
    );
    let _ = writeln!(
        text,
        "{:<12} {:>12} {:>12} {:>12} {:>10}",
        "algorithm", "latency", "analytic", "blocked", "cf-frac"
    );
    for alg in [
        optmc::Algorithm::UArch,
        optmc::Algorithm::OptTree,
        optmc::Algorithm::OptArch,
        optmc::Algorithm::Sequential,
    ] {
        let s = run_trials(topo.as_ref(), &cfg, alg, k, bytes, trials, seed);
        let _ = writeln!(
            text,
            "{:<12} {:>12.1} {:>12.1} {:>12.1} {:>10.2}",
            alg.display_name(topo.as_ref()),
            s.mean_latency,
            s.mean_analytic,
            s.mean_blocked,
            s.contention_free_fraction
        );
    }
    Ok(text)
}

/// `optmc calibrate` — user-level measurement of (t_hold, t_end).
fn cmd_calibrate(a: &Args) -> Result<String, CliError> {
    let topo = parse_topology(a.require("topo")?)?;
    let sizes: Vec<u64> = match a.get("sizes") {
        None => vec![64, 256, 1024, 4096, 16384, 65536],
        Some(csv) => csv
            .split(',')
            .map(|s| s.parse().map_err(|_| err(format!("bad size '{s}'"))))
            .collect::<Result<_, _>>()?,
    };
    if sizes.len() < 2 {
        return Err(err("need at least two sizes to fit the model"));
    }
    let cfg = build_cfg(a)?;
    let n = topo.graph().n_nodes() as u32;
    let (src, dst) = (topo::NodeId(0), topo::NodeId(n / 2));
    let mut text = format!("calibrating on {} ({} -> {}):\n", topo.name(), src.0, dst.0);
    let _ = writeln!(text, "{:>10} {:>12} {:>12}", "bytes", "t_hold", "t_end");
    for &m in &sizes {
        let h = measure::measure_t_hold(topo.as_ref(), &cfg, src, dst, m, 8);
        let e = measure::measure_t_end(topo.as_ref(), &cfg, src, dst, m);
        let _ = writeln!(text, "{m:>10} {h:>12} {e:>12}");
    }
    let (hold_fn, end_fn) = measure::calibrate(topo.as_ref(), &cfg, src, dst, &sizes);
    let _ = writeln!(text, "\n  t_hold(m) = {hold_fn}");
    let _ = writeln!(text, "  t_end(m)  = {end_fn}");
    Ok(text)
}

/// `optmc gather` — the dual collective over the same tree.
fn cmd_gather(a: &Args) -> Result<String, CliError> {
    let topo = parse_topology(a.require("topo")?)?;
    let alg = parse_algorithm(a.require("alg")?)?;
    let k: usize = a.require_num("nodes")?;
    let bytes: u64 = a.require_num("bytes")?;
    let seed: u64 = a.num("seed", 1997)?;
    let n = topo.graph().n_nodes();
    if k > n || k < 2 {
        return Err(err(format!("--nodes must be in 2..={n}")));
    }
    let cfg = build_cfg(a)?;
    let parts = random_placement(n, k, seed);
    let out = optmc::gather::run_gather(topo.as_ref(), &cfg, alg, &parts, parts[0], bytes);
    let mc = optmc::run_multicast(topo.as_ref(), &cfg, alg, &parts, parts[0], bytes);
    let mut text = String::new();
    let _ = writeln!(
        text,
        "{} gather on {}: {} nodes, {} bytes",
        alg.display_name(topo.as_ref()),
        topo.name(),
        k,
        bytes
    );
    let _ = writeln!(text, "  gather latency     {}", out.latency);
    let _ = writeln!(text, "  multicast latency  {}", mc.latency);
    let _ = writeln!(text, "  mirrored bound     {}", out.analytic);
    let _ = writeln!(
        text,
        "  gather blocked     {} cycles",
        out.sim.blocked_cycles
    );
    Ok(text)
}

/// `optmc growth` — the reachable-set curve.
fn cmd_growth(a: &Args) -> Result<String, CliError> {
    let hold: Time = a.require_num("hold")?;
    let end: Time = a.require_num("end")?;
    if hold == 0 || hold > end {
        return Err(err("growth needs 0 < t_hold <= t_end"));
    }
    let until: Time = a.num("until", 10 * end)?;
    let mut text = format!("reachable nodes N(T) for t_hold={hold}, t_end={end}:\n");
    for (t, n) in mtree::growth::growth_curve(hold, end, until) {
        let _ = writeln!(text, "{t:>8}  {n}");
    }
    Ok(text)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(cmdline: &str) -> Result<String, CliError> {
        dispatch(&Args::parse(cmdline.split_whitespace().map(String::from)).unwrap())
    }

    #[test]
    fn tree_command_prints_fig1_values() {
        let out = run("tree --hold 20 --end 55 --k 8").unwrap();
        assert!(out.contains("latency 130"), "{out}");
        assert!(out.contains("binomial would be 165"), "{out}");
    }

    #[test]
    fn tree_with_dot_emits_graphviz() {
        let out = run("tree --hold 20 --end 55 --k 8 --dot").unwrap();
        assert!(out.contains("digraph multicast"));
    }

    #[test]
    fn tree_rejects_bad_model() {
        assert!(run("tree --hold 60 --end 55 --k 8").is_err());
        assert!(run("tree --hold 20 --end 55 --k 0").is_err());
        assert!(run("tree --hold 20 --end 55 --k 8 --src 9").is_err());
    }

    #[test]
    fn run_command_reports_contention_freedom() {
        let out = run("run --topo mesh:8x8 --alg opt-arch --nodes 12 --bytes 2048").unwrap();
        assert!(out.contains("blocked        0 cycles"), "{out}");
        assert!(out.contains("static check   0 conflicting"), "{out}");
    }

    #[test]
    fn run_command_with_trace_shows_channels() {
        let out =
            run("run --topo mesh:8x8 --alg opt-tree --nodes 12 --bytes 2048 --trace").unwrap();
        assert!(out.contains("busiest channels"), "{out}");
    }

    #[test]
    fn inspect_text_reports_phases_and_vitals() {
        let out =
            run("inspect --topo mesh:8x8 --alg opt-arch --nodes 12 --bytes 2048 --format text")
                .unwrap();
        assert!(out.contains("phases: queued"), "{out}");
        assert!(out.contains("events ("), "{out}");
        assert!(out.contains("busiest channels"), "{out}");
    }

    #[test]
    fn inspect_perfetto_stdout_is_json() {
        let out =
            run("inspect --topo mesh:4x4 --alg opt-tree --nodes 6 --bytes 1024 --format perfetto")
                .unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert!(v.get("traceEvents").unwrap().as_array().unwrap().len() > 4);
    }

    #[test]
    fn inspect_jsonl_stdout_is_one_event_per_line() {
        let out =
            run("inspect --topo mesh:4x4 --alg opt-tree --nodes 6 --bytes 1024 --format jsonl")
                .unwrap();
        let mut n = 0;
        for line in out.lines() {
            let v: serde_json::Value = serde_json::from_str(line).unwrap();
            assert!(v.get("kind").is_some(), "bad event line: {line}");
            n += 1;
        }
        assert!(n > 4, "expected several trace events, got {n}");
    }

    #[test]
    fn inspect_writes_perfetto_file_end_to_end() {
        let path = std::env::temp_dir().join("optmc_inspect_test.perfetto.json");
        let path_s = path.to_str().unwrap().to_string();
        let out = run(&format!(
            "inspect --topo mesh:8x8 --alg u-arch --nodes 10 --bytes 4096 \
             --format perfetto --trace-out {path_s}"
        ))
        .unwrap();
        assert!(out.contains("perfetto trace written"), "{out}");
        let text = std::fs::read_to_string(&path).unwrap();
        let v: serde_json::Value = serde_json::from_str(&text).unwrap();
        assert!(v.get("traceEvents").unwrap().as_array().unwrap().len() > 4);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn inspect_heatmap_renders_and_exports() {
        let base = std::env::temp_dir().join(format!("optmc_inspect_heat_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        std::fs::create_dir_all(&base).unwrap();
        let heat = base.join("heat.json");
        let out = run(&format!(
            "inspect --topo mesh:8x8 --alg opt-tree --nodes 12 --bytes 2048 --seed 0 \
             --heatmap --heatmap-out {}",
            heat.to_str().unwrap()
        ))
        .unwrap();
        assert!(out.contains("contention heatmap:"), "{out}");
        assert!(out.contains("heatmap JSON written"), "{out}");
        let v: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&heat).unwrap()).unwrap();
        assert!(!v.get("channels").unwrap().as_array().unwrap().is_empty());
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn inspect_telemetry_out_is_deterministic_and_speaks_prometheus() {
        let base = std::env::temp_dir().join(format!("optmc_inspect_tel_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        std::fs::create_dir_all(&base).unwrap();
        let (t1, t2, prom) = (
            base.join("a.json"),
            base.join("b.json"),
            base.join("t.prom"),
        );
        let cmd = "inspect --topo mesh:8x8 --alg opt-arch --nodes 12 --bytes 2048 --format text";
        run(&format!("{cmd} --telemetry-out {}", t1.to_str().unwrap())).unwrap();
        run(&format!("{cmd} --telemetry-out {}", t2.to_str().unwrap())).unwrap();
        let a = std::fs::read_to_string(&t1).unwrap();
        assert_eq!(
            a,
            std::fs::read_to_string(&t2).unwrap(),
            "same seed, same bytes"
        );
        let v: serde_json::Value = serde_json::from_str(&a).unwrap();
        assert!(
            v.get("counters")
                .unwrap()
                .get("run_events_processed")
                .unwrap()
                .as_u64()
                .unwrap()
                > 0
        );
        // .prom selects the Prometheus text exposition.
        run(&format!("{cmd} --telemetry-out {}", prom.to_str().unwrap())).unwrap();
        let text = std::fs::read_to_string(&prom).unwrap();
        assert!(
            text.contains("# TYPE run_events_processed counter"),
            "{text}"
        );
        assert!(text.contains("run_latency_cycles_count"), "{text}");
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn inspect_rejects_bad_format() {
        assert!(
            run("inspect --topo mesh:4x4 --alg opt-arch --nodes 6 --bytes 64 --format xml")
                .is_err()
        );
    }

    #[test]
    fn compare_lists_all_algorithms() {
        let out = run("compare --topo bmin:32 --nodes 8 --bytes 1024 --trials 2").unwrap();
        assert!(out.contains("U-min"));
        assert!(out.contains("OPT-min"));
        assert!(out.contains("sequential"));
    }

    #[test]
    fn calibrate_fits_a_line() {
        let out = run("calibrate --topo mesh:8x8 --sizes 256,1024,4096").unwrap();
        assert!(out.contains("t_hold(m) ="), "{out}");
    }

    #[test]
    fn gather_command_reports_both_latencies() {
        let out = run("gather --topo mesh:8x8 --alg opt-arch --nodes 10 --bytes 1024").unwrap();
        assert!(out.contains("gather latency"), "{out}");
        assert!(out.contains("mirrored bound"), "{out}");
    }

    #[test]
    fn growth_curve_prints() {
        let out = run("growth --hold 20 --end 55 --until 200").unwrap();
        assert!(out.lines().count() > 5);
    }

    #[test]
    fn check_certifies_mesh_topology() {
        let out = run("check --topo mesh:8x8").unwrap();
        assert!(out.contains("info[NC0002]"), "{out}");
        assert!(out.contains("cannot deadlock"), "{out}");
        assert!(out.contains("info[NC0104]"), "{out}");
        assert!(out.contains("clean (no findings above info)"), "{out}");
    }

    #[test]
    fn check_flags_unvirtualized_torus_with_witness() {
        let e = run("check --topo torus:4x4:novc").unwrap_err();
        assert!(e.0.contains("error[NC0001]"), "{}", e.0);
        assert!(e.0.contains("channel dependency cycle"), "{}", e.0);
        assert!(e.0.contains("= channels: ch"), "{}", e.0);
        assert!(e.0.contains("virtual channels"), "{}", e.0);
        // The virtualized torus is fine.
        assert!(run("check --topo torus:4x4").is_ok());
    }

    #[test]
    fn check_certifies_opt_schedules_and_oracle_agreement() {
        let out = run("check --topo mesh:8x8 --alg opt-arch --nodes 16 --bytes 4096").unwrap();
        assert!(out.contains("info[NC0202]"), "{out}");
        assert!(out.contains("contention-free"), "{out}");
        assert!(out.contains("info[NC0203]"), "{out}");
        assert!(out.contains("0 blocked cycles"), "{out}");
    }

    #[test]
    fn check_counts_opt_tree_conflicts() {
        // Seed 0 on mesh-8x8 contends for OPT-tree (see netcheck's oracle
        // sweep); the check must count the overlaps and still agree with
        // the simulator.
        let e = run("check --topo mesh:8x8 --alg opt-tree --nodes 14 --bytes 1024 --seed 0")
            .unwrap_err();
        assert!(e.0.contains("error[NC0201]"), "{}", e.0);
        assert!(e.0.contains("conflicting"), "{}", e.0);
        assert!(e.0.contains("info[NC0203]"), "{}", e.0);
        assert!(!e.0.contains("NC0302"), "{}", e.0);
    }

    #[test]
    fn check_set_certifies_disjoint_staggered_workload() {
        let out = run(
            "check --topo mesh:16x16 --set --count 4 --nodes 8 --bytes 2048 \
             --gap 2000000 --disjoint --seed 3",
        )
        .unwrap();
        assert!(out.contains("info[NC0210]"), "{out}");
        assert!(out.contains("certified contention-free"), "{out}");
        assert!(out.contains("verdict 'clean'"), "{out}");
        assert!(out.contains("info[NC0203]"), "{out}");
        assert!(out.contains("0 blocked cycles"), "{out}");
    }

    #[test]
    fn check_set_flags_simultaneous_batch_with_witness() {
        let e = run(
            "check --topo mesh:16x16 --set --count 4 --nodes 24 --bytes 2048 \
             --gap 0 --disjoint --seed 0",
        )
        .unwrap_err();
        assert!(e.0.contains("error[NC0211]"), "{}", e.0);
        assert!(e.0.contains("contend for channel ch"), "{}", e.0);
        assert!(e.0.contains("= window: cycles ["), "{}", e.0);
        // The simulator saw real blocking, so the oracle still agrees.
        assert!(e.0.contains("info[NC0203]"), "{}", e.0);
        assert!(!e.0.contains("NC0302"), "{}", e.0);
    }

    #[test]
    fn check_set_rejects_overlapping_groups_as_uncertifiable() {
        // Without --disjoint, simultaneous workload groups share nodes;
        // such sets must be refused certification with NC0212.
        let e = run(
            "check --topo mesh:8x8 --set --count 6 --nodes 20 --bytes 2048 \
             --gap 0 --seed 1",
        )
        .unwrap_err();
        assert!(e.0.contains("error[NC0212]"), "{}", e.0);
        assert!(e.0.contains("cannot be certified"), "{}", e.0);
        assert!(!e.0.contains("NC0210"), "{}", e.0);
    }

    #[test]
    fn check_set_certificate_round_trips_through_the_file() {
        let path = std::env::temp_dir().join(format!("optmc_cert_{}.json", std::process::id()));
        let path_s = path.to_str().unwrap().to_string();
        let out = run(&format!(
            "check --topo mesh:16x16 --set --count 3 --nodes 8 --bytes 2048 \
             --gap 2000000 --disjoint --seed 5 --cert-out {path_s}"
        ))
        .unwrap();
        assert!(out.contains("plan certificate written to"), "{out}");
        let cert =
            netcheck::PlanCertificate::from_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert!(cert.clean);
        assert_eq!(cert.multicasts.len(), 3);
        cert.verify().expect("independent verifier accepts");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn check_set_json_is_byte_stable() {
        let cmd = "check --topo mesh:16x16 --set --count 4 --nodes 8 --bytes 2048 \
             --gap 2000000 --disjoint --seed 3 --json";
        let (a, b) = (run(cmd).unwrap(), run(cmd).unwrap());
        assert_eq!(a, b);
        let v: serde_json::Value = serde_json::from_str(&a).unwrap();
        let diags = v.get("diagnostics").unwrap().as_array().unwrap();
        let codes: Vec<&str> = diags
            .iter()
            .map(|d| d.get("code").unwrap().as_str().unwrap())
            .collect();
        let mut sorted = codes.clone();
        sorted.sort_unstable();
        assert_eq!(codes, sorted, "diagnostics must be code-ordered");
    }

    #[test]
    fn check_set_validates_flags() {
        assert!(run("check --topo mesh:4x4 --set --nodes 8 --count 0").is_err());
        assert!(run("check --topo mesh:4x4 --set --nodes 1").is_err());
        // --disjoint needs k*count nodes available.
        assert!(run("check --topo mesh:4x4 --set --nodes 8 --count 3 --disjoint").is_err());
        assert!(run("check --topo mesh:4x4 --set --nodes 4 --gap 10 --mean-gap 5.0").is_err());
    }

    #[test]
    fn check_conservative_mode_is_available() {
        let out =
            run("check --topo mesh:8x8 --alg opt-arch --nodes 16 --bytes 4096 --conservative")
                .unwrap();
        assert!(out.contains("conservative interval analysis"), "{out}");
    }

    #[test]
    fn check_json_is_machine_readable() {
        let out = run("check --topo mesh:4x4 --json").unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(v.get("target").unwrap().as_str().unwrap(), "mesh-4x4");
        assert!(v.get("diagnostics").unwrap().as_array().unwrap().len() >= 3);
    }

    #[test]
    fn help_and_unknown() {
        assert!(run("help").unwrap().contains("USAGE"));
        assert!(run("frobnicate").is_err());
    }

    #[test]
    fn run_validates_node_count() {
        assert!(run("run --topo mesh:4x4 --alg opt-arch --nodes 20 --bytes 64").is_err());
        assert!(run("run --topo mesh:4x4 --alg opt-arch --nodes 1 --bytes 64").is_err());
    }
}
