//! `optmc sweep` (campaign runner) and `optmc workload` (open-loop
//! concurrent-multicast workloads) — the CLI surface of the `campaign`
//! crate.

use std::fmt::Write as _;
use std::path::PathBuf;

use campaign::{
    figure_from_records, run_campaign, run_workload, summarize, Arrivals, CampaignSpec, CellReport,
    PoolOptions, ShardStore, WorkloadSpec,
};
use flitsim::SimConfig;

use crate::args::Args;
use crate::spec::{parse_algorithm, parse_topology};
use crate::{err, CliError};

/// Parse the shared arrival-process flags: `--gap G` (fixed-rate) or
/// `--mean-gap F` (Poisson, the default at 5000 cycles).  Used by
/// `optmc workload` and `optmc check --set`.
pub(crate) fn parse_arrivals(a: &Args) -> Result<Arrivals, CliError> {
    match (a.get("gap"), a.get("mean-gap")) {
        (Some(_), Some(_)) => Err(err("--gap and --mean-gap are mutually exclusive")),
        (Some(g), None) => Ok(Arrivals::Fixed {
            gap: g
                .parse()
                .map_err(|_| err(format!("--gap: cannot parse '{g}'")))?,
        }),
        (None, Some(m)) => Ok(Arrivals::Poisson {
            mean_gap: m
                .parse()
                .map_err(|_| err(format!("--mean-gap: cannot parse '{m}'")))?,
        }),
        (None, None) => Ok(Arrivals::Poisson { mean_gap: 5000.0 }),
    }
}

fn load_spec(a: &Args) -> Result<CampaignSpec, CliError> {
    let path = a.require("spec")?;
    CampaignSpec::load(std::path::Path::new(path)).map_err(CliError)
}

fn store_dir(a: &Args, spec: &CampaignSpec) -> PathBuf {
    let out = a.get("out").unwrap_or("results/campaigns");
    PathBuf::from(out).join(&spec.name)
}

/// `optmc sweep run|resume|report|status`.
pub fn cmd_sweep(a: &Args) -> Result<String, CliError> {
    let action = a.action.as_deref().unwrap_or("");
    match action {
        "run" | "resume" => sweep_run(a, action == "resume"),
        "report" => sweep_report(a),
        "status" => sweep_status(a),
        "" => Err(err("sweep needs an action: run | resume | report | status")),
        other => Err(err(format!(
            "unknown sweep action '{other}' (expected run | resume | report | status)"
        ))),
    }
}

fn sweep_run(a: &Args, resume: bool) -> Result<String, CliError> {
    let spec = load_spec(a)?;
    let dir = store_dir(a, &spec);
    if resume && !dir.exists() {
        return Err(err(format!(
            "nothing to resume: no shard store at {}",
            dir.display()
        )));
    }
    let store = ShardStore::open(&dir).map_err(|e| err(format!("{}: {e}", dir.display())))?;
    let opts = PoolOptions {
        jobs: a.num("jobs", 0)?,
        budget_ms: match a.get("budget-ms") {
            None => None,
            Some(v) => Some(
                v.parse()
                    .map_err(|_| err(format!("--budget-ms: cannot parse '{v}'")))?,
            ),
        },
    };
    let quiet = a.has("quiet");
    let live = a.has("progress");
    let progress = |r: &CellReport| {
        if live {
            // In-place single-line renderer: the heartbeat the pool just
            // appended carries progress, in-flight, and ETA.
            let line = store.latest_heartbeat().ok().flatten().map_or_else(
                || format!("[{}/{}] {}", r.done, r.total, r.key),
                |b| b.progress_line(),
            );
            eprint!("\r\x1b[2K{line}");
            let _ = std::io::Write::flush(&mut std::io::stderr());
            return;
        }
        if quiet {
            return;
        }
        // Streaming progress lines go to stderr so stdout stays the
        // machine-usable summary.
        match (&r.stats, &r.error) {
            (Some(s), _) => eprintln!(
                "[{:>3}/{}] {}  mean {:.1}  ({} events, {} ms)",
                r.done, r.total, r.key, s.mean_latency, r.events, r.wall_ms
            ),
            (None, Some(e)) => eprintln!("[{:>3}/{}] {}  FAILED: {e}", r.done, r.total, r.key),
            (None, None) => {}
        }
    };
    let summary = run_campaign(&spec, &store, &opts, &progress).map_err(CliError)?;
    if live {
        eprintln!();
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "campaign '{}': {} cells — {} executed, {} skipped, {} failed",
        spec.name, summary.total, summary.executed, summary.skipped, summary.failed
    );
    let _ = writeln!(
        out,
        "wall {} ms ({:.2} cells/s), shard store {}",
        summary.wall_ms,
        summary.cells_per_sec,
        store.dir().display()
    );
    if summary.failed > 0 {
        let _ = writeln!(
            out,
            "failures recorded in {}; fix or raise --budget-ms and `optmc sweep resume`",
            store.dir().join("failures.jsonl").display()
        );
    }
    Ok(out)
}

fn sweep_report(a: &Args) -> Result<String, CliError> {
    let spec = load_spec(a)?;
    let dir = store_dir(a, &spec);
    let store = ShardStore::open(&dir).map_err(|e| err(format!("{}: {e}", dir.display())))?;
    let records = store
        .load_cells()
        .map_err(|e| err(format!("shard store: {e}")))?;
    let mut out = String::new();
    let Some(summary) = summarize(&records) else {
        return Err(err(format!(
            "no completed cells in {} — run the campaign first",
            dir.display()
        )));
    };
    if spec.figure.is_some() {
        let fig = figure_from_records(&spec, &records).map_err(CliError)?;
        let _ = write!(out, "{}", fig.to_table());
        let csv = fig
            .write_csv()
            .map_err(|e| err(format!("writing CSV: {e}")))?;
        let json = fig
            .write_json()
            .map_err(|e| err(format!("writing JSON: {e}")))?;
        let _ = writeln!(out, "\n[csv] {}", csv.display());
        let _ = writeln!(out, "[json] {}", json.display());
        let _ = writeln!(out);
    }
    let _ = write!(out, "{}", campaign::aggregate::render_summary(&summary));
    let failures = store
        .load_failures()
        .map_err(|e| err(format!("failure ledger: {e}")))?;
    if !failures.is_empty() {
        let _ = writeln!(
            out,
            "failures       {} (see failures.jsonl)",
            failures.len()
        );
        // Surface the first few reasons so a broken campaign is
        // diagnosable from the report alone.
        const SHOWN: usize = 3;
        for f in failures.iter().take(SHOWN) {
            let mut reason = f.reason.replace('\n', " ");
            if reason.len() > 70 {
                reason.truncate(67);
                reason.push_str("...");
            }
            let _ = writeln!(out, "  - {}: {reason}", f.key);
        }
        if failures.len() > SHOWN {
            let _ = writeln!(out, "  ... and {} more", failures.len() - SHOWN);
        }
    }
    if let Some(path) = a.get("telemetry-out") {
        crate::write_snapshot(path, &store_snapshot(&records, &failures))?;
        let _ = writeln!(out, "telemetry snapshot written to {path}");
    }
    Ok(out)
}

/// Reduce a campaign's shard store into a [`telem::TelemetrySnapshot`]
/// for the shared exposition layer (JSON or Prometheus text).  Built
/// from the durable records only, so it is deterministic for a given
/// store regardless of when it is taken.
fn store_snapshot(
    records: &[campaign::CellRecord],
    failures: &[campaign::Failure],
) -> telem::TelemetrySnapshot {
    let mut s = telem::TelemetrySnapshot::new();
    s.counter(
        "campaign_cells_completed",
        "Cells recorded in the shard store",
        records.len() as u64,
    );
    s.counter(
        "campaign_cells_failed",
        "Entries in the failure ledger",
        failures.len() as u64,
    );
    s.counter(
        "campaign_trials_total",
        "Trials across all completed cells",
        records.iter().map(|r| r.outcomes.len() as u64).sum(),
    );
    s.counter(
        "campaign_events_total",
        "Simulator events across all completed cells",
        records
            .iter()
            .flat_map(|r| &r.outcomes)
            .map(|o| o.events)
            .sum(),
    );
    s.histogram(
        "campaign_trial_latency_cycles",
        "Simulated multicast latency per trial",
        &telem::Histogram::from_samples(
            records.iter().flat_map(|r| &r.outcomes).map(|o| o.latency),
        ),
    );
    s.histogram(
        "campaign_trial_blocked_cycles",
        "Blocked cycles per trial",
        &telem::Histogram::from_samples(
            records.iter().flat_map(|r| &r.outcomes).map(|o| o.blocked),
        ),
    );
    s
}

/// `optmc sweep status` — the latest heartbeat of a campaign, live or
/// finished: progress, in-flight cells, cell-latency histogram, ETA.
fn sweep_status(a: &Args) -> Result<String, CliError> {
    let spec = load_spec(a)?;
    let dir = store_dir(a, &spec);
    if !dir.exists() {
        return Err(err(format!("no shard store at {}", dir.display())));
    }
    let store = ShardStore::open(&dir).map_err(|e| err(format!("{}: {e}", dir.display())))?;
    let Some(beat) = store
        .latest_heartbeat()
        .map_err(|e| err(format!("heartbeat stream: {e}")))?
    else {
        return Err(err(format!(
            "no heartbeat recorded in {} — run the campaign first",
            dir.display()
        )));
    };
    if a.has("json") {
        let json = serde_json::to_string_pretty(&beat)
            .map_err(|e| err(format!("serializing heartbeat: {e}")))?;
        return Ok(format!("{json}\n"));
    }
    let mut out = format!("campaign '{}' — {}\n", spec.name, dir.display());
    out.push_str(&beat.render());
    Ok(out)
}

/// `optmc workload` — one open-loop concurrent-multicast experiment.
pub fn cmd_workload(a: &Args) -> Result<String, CliError> {
    let topo = parse_topology(a.require("topo")?)?;
    let alg = parse_algorithm(a.get("alg").unwrap_or("opt-arch"))?;
    let count: usize = a.num("count", 8)?;
    let k: usize = a.require_num("nodes")?;
    let bytes: u64 = a.require_num("bytes")?;
    let seed: u64 = a.num("seed", 1997)?;
    let n = topo.graph().n_nodes();
    if k > n || k < 2 {
        return Err(err(format!("--nodes must be in 2..={n}")));
    }
    if count == 0 {
        return Err(err("--count must be at least 1"));
    }
    let arrivals = parse_arrivals(a)?;
    let spec = WorkloadSpec {
        count,
        k,
        bytes,
        arrivals,
        seed,
    };
    let cfg = SimConfig::paragon_like();
    let report = run_workload(topo.as_ref(), &cfg, alg, &spec);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "open-loop workload on {}: {} × {}-node {} multicasts of {} bytes ({:?})",
        topo.name(),
        count,
        k,
        alg.display_name(topo.as_ref()),
        bytes,
        arrivals,
    );
    let _ = write!(out, "{}", campaign::workload::render_report(&report));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::dispatch;

    fn run(cmdline: &str) -> Result<String, CliError> {
        dispatch(&Args::parse(cmdline.split_whitespace().map(String::from)).unwrap())
    }

    fn write_spec(tag: &str, out_dir: &std::path::Path) -> PathBuf {
        let spec = format!(
            r#"{{
                "name": "cli_{tag}",
                "topos": ["mesh:8x8"],
                "algorithms": ["u-arch", "opt-arch"],
                "ks": [8],
                "sizes": [512, 4096],
                "trials": 2,
                "figure": {{"id": "cli_{tag}", "title": "cli test fig", "x": "bytes"}}
            }}"#
        );
        let path = out_dir.join(format!("spec_{tag}.json"));
        std::fs::write(&path, spec).unwrap();
        path
    }

    #[test]
    fn sweep_run_report_resume_roundtrip() {
        let base = std::env::temp_dir().join(format!("optmc_sweep_cli_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        std::fs::create_dir_all(&base).unwrap();
        let spec = write_spec("roundtrip", &base);
        let spec_s = spec.to_str().unwrap();
        let out_s = base.join("campaigns");
        let out_s = out_s.to_str().unwrap();

        let out = run(&format!(
            "sweep run --spec {spec_s} --out {out_s} --jobs 2 --quiet"
        ))
        .unwrap();
        assert!(out.contains("4 executed, 0 skipped, 0 failed"), "{out}");

        let out = run(&format!(
            "sweep resume --spec {spec_s} --out {out_s} --quiet"
        ))
        .unwrap();
        assert!(out.contains("0 executed, 4 skipped"), "{out}");

        // report writes results/<id>.csv relative to the cwd; only check
        // the table and summary text here (figure bytes are covered by the
        // campaign crate's tests).
        let out = run(&format!("sweep report --spec {spec_s} --out {out_s}")).unwrap();
        assert!(out.contains("U-mesh") && out.contains("OPT-mesh"), "{out}");
        assert!(out.contains("cells/s"), "{out}");
        for id in ["cli_roundtrip.csv", "cli_roundtrip.json"] {
            let p = std::path::Path::new("results").join(id);
            assert!(p.exists(), "missing {}", p.display());
            let _ = std::fs::remove_file(p);
        }
        let _ = std::fs::remove_dir("results"); // only if the test created it
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn sweep_status_reads_the_heartbeat_stream() {
        let base = std::env::temp_dir().join(format!("optmc_sweep_status_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        std::fs::create_dir_all(&base).unwrap();
        let spec = write_spec("status", &base);
        let spec_s = spec.to_str().unwrap();
        let out_dir = base.join("campaigns");
        let out_s = out_dir.to_str().unwrap();

        // Before any run there is no store to report on.
        assert!(run(&format!("sweep status --spec {spec_s} --out {out_s}")).is_err());

        run(&format!("sweep run --spec {spec_s} --out {out_s} --quiet")).unwrap();
        let out = run(&format!("sweep status --spec {spec_s} --out {out_s}")).unwrap();
        assert!(out.contains("progress       4/4 cells (100%)"), "{out}");
        assert!(out.contains("in flight      0"), "{out}");
        assert!(out.contains("eta            done"), "{out}");

        let out = run(&format!(
            "sweep status --spec {spec_s} --out {out_s} --json"
        ))
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(v.get("done").unwrap().as_u64(), Some(4));
        assert_eq!(v.get("in_flight").unwrap().as_u64(), Some(0));
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn sweep_report_surfaces_failures_and_telemetry() {
        let base = std::env::temp_dir().join(format!("optmc_sweep_telem_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        std::fs::create_dir_all(&base).unwrap();
        let spec = write_spec("telem", &base);
        let spec_s = spec.to_str().unwrap();
        let out_dir = base.join("campaigns");
        let out_s = out_dir.to_str().unwrap();

        // A 0ms budget fails two cells; the report must name them.
        run(&format!(
            "sweep run --spec {spec_s} --out {out_s} --quiet --budget-ms 0 --jobs 1"
        ))
        .unwrap();
        run(&format!(
            "sweep resume --spec {spec_s} --out {out_s} --quiet"
        ))
        .unwrap();

        let prom = base.join("campaign.prom");
        let json = base.join("campaign.json");
        let out = run(&format!(
            "sweep report --spec {spec_s} --out {out_s} --telemetry-out {}",
            prom.to_str().unwrap()
        ))
        .unwrap();
        assert!(
            out.contains("failures       4 (see failures.jsonl)"),
            "{out}"
        );
        assert!(out.contains("budget:"), "{out}");
        assert!(out.contains("... and 1 more"), "{out}");
        let prom_text = std::fs::read_to_string(&prom).unwrap();
        assert!(prom_text.contains("# TYPE campaign_cells_completed counter"));
        assert!(prom_text.contains("campaign_cells_failed 4"));

        let out = run(&format!(
            "sweep report --spec {spec_s} --out {out_s} --telemetry-out {}",
            json.to_str().unwrap()
        ))
        .unwrap();
        assert!(out.contains("telemetry snapshot written"), "{out}");
        let v: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&json).unwrap()).unwrap();
        assert_eq!(
            v.get("counters")
                .unwrap()
                .get("campaign_cells_completed")
                .unwrap()
                .as_u64(),
            Some(4)
        );
        for id in ["cli_telem.csv", "cli_telem.json"] {
            let _ = std::fs::remove_file(std::path::Path::new("results").join(id));
        }
        let _ = std::fs::remove_dir("results");
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn sweep_rejects_bad_actions_and_missing_resume() {
        let base = std::env::temp_dir().join(format!("optmc_sweep_cli_bad_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        std::fs::create_dir_all(&base).unwrap();
        let spec = write_spec("bad", &base);
        let spec_s = spec.to_str().unwrap();
        assert!(run("sweep --spec nope.json").is_err(), "missing action");
        assert!(run("sweep explode --spec nope.json").is_err());
        let e = run(&format!(
            "sweep resume --spec {spec_s} --out {}/campaigns",
            base.to_str().unwrap()
        ))
        .unwrap_err();
        assert!(e.0.contains("nothing to resume"), "{}", e.0);
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn workload_reports_interference() {
        let out = run(
            "workload --topo mesh:8x8 --alg opt-arch --count 4 --nodes 8 --bytes 1024 --gap 200",
        )
        .unwrap();
        assert!(out.contains("interference"), "{out}");
        assert!(out.contains("multicasts     4"), "{out}");
        // Poisson is the default arrival process.
        let out =
            run("workload --topo mesh:8x8 --count 3 --nodes 6 --bytes 512 --mean-gap 800").unwrap();
        assert!(out.contains("Poisson"), "{out}");
        assert!(run(
            "workload --topo mesh:8x8 --count 3 --nodes 6 --bytes 512 --gap 5 --mean-gap 8"
        )
        .is_err());
    }
}
