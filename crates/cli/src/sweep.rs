//! `optmc sweep` (campaign runner) and `optmc workload` (open-loop
//! concurrent-multicast workloads) — the CLI surface of the `campaign`
//! crate.

use std::fmt::Write as _;
use std::path::PathBuf;

use campaign::{
    figure_from_records, run_campaign, run_workload, summarize, Arrivals, CampaignSpec, CellReport,
    PoolOptions, ShardStore, WorkloadSpec,
};
use flitsim::SimConfig;

use crate::args::Args;
use crate::spec::{parse_algorithm, parse_topology};
use crate::{err, CliError};

fn load_spec(a: &Args) -> Result<CampaignSpec, CliError> {
    let path = a.require("spec")?;
    CampaignSpec::load(std::path::Path::new(path)).map_err(CliError)
}

fn store_dir(a: &Args, spec: &CampaignSpec) -> PathBuf {
    let out = a.get("out").unwrap_or("results/campaigns");
    PathBuf::from(out).join(&spec.name)
}

/// `optmc sweep run|resume|report`.
pub fn cmd_sweep(a: &Args) -> Result<String, CliError> {
    let action = a.action.as_deref().unwrap_or("");
    match action {
        "run" | "resume" => sweep_run(a, action == "resume"),
        "report" => sweep_report(a),
        "" => Err(err("sweep needs an action: run | resume | report")),
        other => Err(err(format!(
            "unknown sweep action '{other}' (expected run | resume | report)"
        ))),
    }
}

fn sweep_run(a: &Args, resume: bool) -> Result<String, CliError> {
    let spec = load_spec(a)?;
    let dir = store_dir(a, &spec);
    if resume && !dir.exists() {
        return Err(err(format!(
            "nothing to resume: no shard store at {}",
            dir.display()
        )));
    }
    let store = ShardStore::open(&dir).map_err(|e| err(format!("{}: {e}", dir.display())))?;
    let opts = PoolOptions {
        jobs: a.num("jobs", 0)?,
        budget_ms: match a.get("budget-ms") {
            None => None,
            Some(v) => Some(
                v.parse()
                    .map_err(|_| err(format!("--budget-ms: cannot parse '{v}'")))?,
            ),
        },
    };
    let quiet = a.has("quiet");
    let progress = |r: &CellReport| {
        if quiet {
            return;
        }
        // Streaming progress lines go to stderr so stdout stays the
        // machine-usable summary.
        match (&r.stats, &r.error) {
            (Some(s), _) => eprintln!(
                "[{:>3}/{}] {}  mean {:.1}  ({} events, {} ms)",
                r.done, r.total, r.key, s.mean_latency, r.events, r.wall_ms
            ),
            (None, Some(e)) => eprintln!("[{:>3}/{}] {}  FAILED: {e}", r.done, r.total, r.key),
            (None, None) => {}
        }
    };
    let summary = run_campaign(&spec, &store, &opts, &progress).map_err(CliError)?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "campaign '{}': {} cells — {} executed, {} skipped, {} failed",
        spec.name, summary.total, summary.executed, summary.skipped, summary.failed
    );
    let _ = writeln!(
        out,
        "wall {} ms ({:.2} cells/s), shard store {}",
        summary.wall_ms,
        summary.cells_per_sec,
        store.dir().display()
    );
    if summary.failed > 0 {
        let _ = writeln!(
            out,
            "failures recorded in {}; fix or raise --budget-ms and `optmc sweep resume`",
            store.dir().join("failures.jsonl").display()
        );
    }
    Ok(out)
}

fn sweep_report(a: &Args) -> Result<String, CliError> {
    let spec = load_spec(a)?;
    let dir = store_dir(a, &spec);
    let store = ShardStore::open(&dir).map_err(|e| err(format!("{}: {e}", dir.display())))?;
    let records = store
        .load_cells()
        .map_err(|e| err(format!("shard store: {e}")))?;
    let mut out = String::new();
    let Some(summary) = summarize(&records) else {
        return Err(err(format!(
            "no completed cells in {} — run the campaign first",
            dir.display()
        )));
    };
    if spec.figure.is_some() {
        let fig = figure_from_records(&spec, &records).map_err(CliError)?;
        let _ = write!(out, "{}", fig.to_table());
        let csv = fig
            .write_csv()
            .map_err(|e| err(format!("writing CSV: {e}")))?;
        let json = fig
            .write_json()
            .map_err(|e| err(format!("writing JSON: {e}")))?;
        let _ = writeln!(out, "\n[csv] {}", csv.display());
        let _ = writeln!(out, "[json] {}", json.display());
        let _ = writeln!(out);
    }
    let _ = write!(out, "{}", campaign::aggregate::render_summary(&summary));
    let failures = store
        .load_failures()
        .map_err(|e| err(format!("failure ledger: {e}")))?;
    if !failures.is_empty() {
        let _ = writeln!(
            out,
            "failures       {} (see failures.jsonl)",
            failures.len()
        );
    }
    Ok(out)
}

/// `optmc workload` — one open-loop concurrent-multicast experiment.
pub fn cmd_workload(a: &Args) -> Result<String, CliError> {
    let topo = parse_topology(a.require("topo")?)?;
    let alg = parse_algorithm(a.get("alg").unwrap_or("opt-arch"))?;
    let count: usize = a.num("count", 8)?;
    let k: usize = a.require_num("nodes")?;
    let bytes: u64 = a.require_num("bytes")?;
    let seed: u64 = a.num("seed", 1997)?;
    let n = topo.graph().n_nodes();
    if k > n || k < 2 {
        return Err(err(format!("--nodes must be in 2..={n}")));
    }
    if count == 0 {
        return Err(err("--count must be at least 1"));
    }
    let arrivals = match (a.get("gap"), a.get("mean-gap")) {
        (Some(_), Some(_)) => return Err(err("--gap and --mean-gap are mutually exclusive")),
        (Some(g), None) => Arrivals::Fixed {
            gap: g
                .parse()
                .map_err(|_| err(format!("--gap: cannot parse '{g}'")))?,
        },
        (None, Some(m)) => Arrivals::Poisson {
            mean_gap: m
                .parse()
                .map_err(|_| err(format!("--mean-gap: cannot parse '{m}'")))?,
        },
        (None, None) => Arrivals::Poisson { mean_gap: 5000.0 },
    };
    let spec = WorkloadSpec {
        count,
        k,
        bytes,
        arrivals,
        seed,
    };
    let cfg = SimConfig::paragon_like();
    let report = run_workload(topo.as_ref(), &cfg, alg, &spec);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "open-loop workload on {}: {} × {}-node {} multicasts of {} bytes ({:?})",
        topo.name(),
        count,
        k,
        alg.display_name(topo.as_ref()),
        bytes,
        arrivals,
    );
    let _ = write!(out, "{}", campaign::workload::render_report(&report));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::dispatch;

    fn run(cmdline: &str) -> Result<String, CliError> {
        dispatch(&Args::parse(cmdline.split_whitespace().map(String::from)).unwrap())
    }

    fn write_spec(tag: &str, out_dir: &std::path::Path) -> PathBuf {
        let spec = format!(
            r#"{{
                "name": "cli_{tag}",
                "topos": ["mesh:8x8"],
                "algorithms": ["u-arch", "opt-arch"],
                "ks": [8],
                "sizes": [512, 4096],
                "trials": 2,
                "figure": {{"id": "cli_{tag}", "title": "cli test fig", "x": "bytes"}}
            }}"#
        );
        let path = out_dir.join(format!("spec_{tag}.json"));
        std::fs::write(&path, spec).unwrap();
        path
    }

    #[test]
    fn sweep_run_report_resume_roundtrip() {
        let base = std::env::temp_dir().join(format!("optmc_sweep_cli_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        std::fs::create_dir_all(&base).unwrap();
        let spec = write_spec("roundtrip", &base);
        let spec_s = spec.to_str().unwrap();
        let out_s = base.join("campaigns");
        let out_s = out_s.to_str().unwrap();

        let out = run(&format!(
            "sweep run --spec {spec_s} --out {out_s} --jobs 2 --quiet"
        ))
        .unwrap();
        assert!(out.contains("4 executed, 0 skipped, 0 failed"), "{out}");

        let out = run(&format!(
            "sweep resume --spec {spec_s} --out {out_s} --quiet"
        ))
        .unwrap();
        assert!(out.contains("0 executed, 4 skipped"), "{out}");

        // report writes results/<id>.csv relative to the cwd; only check
        // the table and summary text here (figure bytes are covered by the
        // campaign crate's tests).
        let out = run(&format!("sweep report --spec {spec_s} --out {out_s}")).unwrap();
        assert!(out.contains("U-mesh") && out.contains("OPT-mesh"), "{out}");
        assert!(out.contains("cells/s"), "{out}");
        for id in ["cli_roundtrip.csv", "cli_roundtrip.json"] {
            let p = std::path::Path::new("results").join(id);
            assert!(p.exists(), "missing {}", p.display());
            let _ = std::fs::remove_file(p);
        }
        let _ = std::fs::remove_dir("results"); // only if the test created it
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn sweep_rejects_bad_actions_and_missing_resume() {
        let base = std::env::temp_dir().join(format!("optmc_sweep_cli_bad_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        std::fs::create_dir_all(&base).unwrap();
        let spec = write_spec("bad", &base);
        let spec_s = spec.to_str().unwrap();
        assert!(run("sweep --spec nope.json").is_err(), "missing action");
        assert!(run("sweep explode --spec nope.json").is_err());
        let e = run(&format!(
            "sweep resume --spec {spec_s} --out {}/campaigns",
            base.to_str().unwrap()
        ))
        .unwrap_err();
        assert!(e.0.contains("nothing to resume"), "{}", e.0);
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn workload_reports_interference() {
        let out = run(
            "workload --topo mesh:8x8 --alg opt-arch --count 4 --nodes 8 --bytes 1024 --gap 200",
        )
        .unwrap();
        assert!(out.contains("interference"), "{out}");
        assert!(out.contains("multicasts     4"), "{out}");
        // Poisson is the default arrival process.
        let out =
            run("workload --topo mesh:8x8 --count 3 --nodes 6 --bytes 512 --mean-gap 800").unwrap();
        assert!(out.contains("Poisson"), "{out}");
        assert!(run(
            "workload --topo mesh:8x8 --count 3 --nodes 6 --bytes 512 --gap 5 --mean-gap 8"
        )
        .is_err());
    }
}
