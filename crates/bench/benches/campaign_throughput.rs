//! Criterion: campaign-runner throughput — the same small grid executed by
//! the worker pool at `--jobs 1` and `--jobs 4`, each run against a fresh
//! shard store so every cell actually executes.
//!
//! Besides the Criterion timings this bench writes
//! `results/bench_campaign.json` with the measured cells/sec at both worker
//! counts and the resulting speedup.  No speedup threshold is asserted: on
//! a single-core container the pool cannot beat sequential, and that is a
//! property of the machine, not the pool.

use campaign::{run_campaign, CampaignSpec, PoolOptions, ShardStore};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::cell::Cell as StdCell;
use std::hint::black_box;

fn grid() -> CampaignSpec {
    CampaignSpec::from_json(
        r#"{
            "name": "bench_throughput",
            "topos": ["mesh:8x8"],
            "algorithms": ["u-arch", "opt-arch"],
            "ks": [8, 16],
            "sizes": [1024, 4096],
            "trials": 4
        }"#,
    )
    .expect("bench grid parses")
}

fn fresh_store(tag: &str, run: u64) -> ShardStore {
    let dir =
        std::env::temp_dir().join(format!("bench_campaign_{tag}_{run}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    ShardStore::open(dir).expect("temp shard store")
}

/// One full campaign into a fresh store; returns cells/sec.
fn run_once(spec: &CampaignSpec, jobs: usize, tag: &str, run: u64) -> f64 {
    let store = fresh_store(tag, run);
    let opts = PoolOptions {
        jobs,
        budget_ms: None,
    };
    let summary = run_campaign(spec, &store, &opts, &|_| {}).expect("campaign runs");
    assert_eq!(summary.failed, 0, "bench grid must not fail");
    let _ = std::fs::remove_dir_all(store.dir());
    summary.cells_per_sec
}

fn bench_campaign_throughput(c: &mut Criterion) {
    let spec = grid();
    let mut g = c.benchmark_group("campaign_throughput");
    let mut measured: Vec<(usize, f64)> = Vec::new();
    for jobs in [1usize, 4] {
        // One clean measurement for the JSON report, outside Criterion's
        // timing loop.
        measured.push((jobs, run_once(&spec, jobs, "measure", jobs as u64)));
        let counter = StdCell::new(0u64);
        g.bench_with_input(BenchmarkId::new("jobs", jobs), &jobs, |b, &jobs| {
            b.iter(|| {
                let run = counter.get();
                counter.set(run + 1);
                black_box(run_once(&spec, jobs, "iter", run));
            });
        });
    }
    g.finish();

    let (j1, j4) = (measured[0].1, measured[1].1);
    let speedup = if j1 > 0.0 { j4 / j1 } else { 0.0 };
    let report = serde_json::json!({
        "benchmark": "campaign runner throughput (16 cells, mesh:8x8, 4 trials/cell)",
        "cells": 16,
        "hardware_threads": std::thread::available_parallelism().map_or(0, std::num::NonZero::get),
        "cells_per_sec_jobs1": j1,
        "cells_per_sec_jobs4": j4,
        "speedup_jobs4_over_jobs1": speedup,
    });
    let text = serde_json::to_string_pretty(&report).expect("report serializes");
    // Cargo runs benches with the package root as cwd; the results dir
    // lives at the workspace root.
    let results = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&results).expect("results dir");
    std::fs::write(results.join("bench_campaign.json"), text)
        .expect("write results/bench_campaign.json");
    println!(
        "campaign throughput: jobs=1 {j1:.2} cells/s, jobs=4 {j4:.2} cells/s \
         ({speedup:.2}x) -> results/bench_campaign.json"
    );
}

criterion_group!(benches, bench_campaign_throughput);
criterion_main!(benches);
