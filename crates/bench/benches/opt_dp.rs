//! Criterion: the OPT-tree dynamic program.
//!
//! Verifies the paper's complexity claim operationally: Algorithm 2.1 is
//! O(k) (time per table roughly linear in k), while the exhaustive reference
//! is O(k²).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_opt_table(c: &mut Criterion) {
    let mut g = c.benchmark_group("opt_table_incremental");
    for k in [64usize, 256, 1024, 4096, 16384] {
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| mtree::opt::opt_table(black_box(250), black_box(1000), k));
        });
    }
    g.finish();

    let mut g = c.benchmark_group("opt_table_reference_quadratic");
    for k in [64usize, 256, 1024] {
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| mtree::opt::opt_table_reference(black_box(250), black_box(1000), k));
        });
    }
    g.finish();
}

fn bench_schedule_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("schedule_build");
    for k in [32usize, 256, 2048] {
        let strat = mtree::SplitStrategy::opt(250, 1000, k);
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| mtree::Schedule::build(k, k / 3, black_box(&strat), 250, 1000));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_opt_table, bench_schedule_build);
criterion_main!(benches);
