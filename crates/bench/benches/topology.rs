//! Criterion: topology primitives — path computation, chain sorting and the
//! static contention checker, the inner loops of schedule analysis.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mtree::Schedule;
use optmc::{check_schedule, experiments::random_placement, Algorithm};
use std::hint::black_box;
use topo::{Bmin, Chain, Mesh, NodeId, Topology, UpPolicy};

fn bench_det_path(c: &mut Criterion) {
    let mesh = Mesh::new(&[16, 16]);
    let bmin = Bmin::new(7, UpPolicy::Straight);
    c.bench_function("det_path_mesh16x16", |b| {
        b.iter(|| mesh.det_path(black_box(NodeId(0)), black_box(NodeId(255))));
    });
    c.bench_function("det_path_bmin128", |b| {
        b.iter(|| bmin.det_path(black_box(NodeId(0)), black_box(NodeId(127))));
    });
}

fn bench_chain_sort(c: &mut Criterion) {
    let mesh = Mesh::new(&[16, 16]);
    let mut g = c.benchmark_group("chain_sort_mesh");
    for k in [32usize, 128, 256] {
        let parts = random_placement(256, k, 3);
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| Chain::sorted(&mesh, black_box(&parts), parts[0]));
        });
    }
    g.finish();
}

fn bench_contention_check(c: &mut Criterion) {
    let mesh = Mesh::new(&[16, 16]);
    let mut g = c.benchmark_group("contention_check_mesh");
    for k in [32usize, 128] {
        let parts = random_placement(256, k, 11);
        let chain = Algorithm::OptArch.chain(&mesh, &parts, parts[0]);
        let splits = Algorithm::OptArch.splits(250, 1000, k);
        let sched = Schedule::build(k, chain.src_pos(), &splits, 250, 1000);
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| check_schedule(&mesh, black_box(&chain), black_box(&sched)));
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_det_path,
    bench_chain_sort,
    bench_contention_check
);
criterion_main!(benches);
