//! Criterion: full flit-level multicast runs — the workhorse of every
//! figure.  One benchmark per (algorithm × network), fixed placement, so
//! regressions in the simulator core are visible in isolation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flitsim::SimConfig;
use optmc::{experiments::random_placement, run_multicast, Algorithm};
use topo::{Bmin, Mesh, UpPolicy};

fn bench_mesh_multicast(c: &mut Criterion) {
    let mesh = Mesh::new(&[16, 16]);
    let cfg = SimConfig::paragon_like();
    let parts = random_placement(256, 32, 42);
    let src = parts[0];
    let mut g = c.benchmark_group("mesh16x16_32n_4k");
    for alg in Algorithm::PAPER_SET {
        g.bench_with_input(
            BenchmarkId::from_parameter(alg.display_name(&mesh)),
            &alg,
            |b, &alg| b.iter(|| run_multicast(&mesh, &cfg, alg, &parts, src, 4096)),
        );
    }
    g.finish();
}

fn bench_bmin_multicast(c: &mut Criterion) {
    let bmin = Bmin::new(7, UpPolicy::Straight);
    let cfg = SimConfig::paragon_like();
    let parts = random_placement(128, 32, 42);
    let src = parts[0];
    let mut g = c.benchmark_group("bmin128_32n_4k");
    for alg in Algorithm::PAPER_SET {
        g.bench_with_input(
            BenchmarkId::from_parameter(alg.display_name(&bmin)),
            &alg,
            |b, &alg| b.iter(|| run_multicast(&bmin, &cfg, alg, &parts, src, 4096)),
        );
    }
    g.finish();
}

fn bench_message_size_scaling(c: &mut Criterion) {
    // Engine cost must stay event-bound, not cycle-bound: simulated time
    // grows with message size but wall time should grow far slower.
    let mesh = Mesh::new(&[16, 16]);
    let cfg = SimConfig::paragon_like();
    let parts = random_placement(256, 32, 7);
    let src = parts[0];
    let mut g = c.benchmark_group("optmesh_msg_scaling");
    for bytes in [1024u64, 16384, 65536] {
        g.bench_with_input(BenchmarkId::from_parameter(bytes), &bytes, |b, &bytes| {
            b.iter(|| run_multicast(&mesh, &cfg, Algorithm::OptArch, &parts, src, bytes));
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_mesh_multicast,
    bench_bmin_multicast,
    bench_message_size_scaling
);
criterion_main!(benches);
