//! Criterion: static-verification passes — channel-dependency-graph
//! deadlock analysis, the full `check` report (CDG + routing lints), and
//! the windowed contention checker that replaced the conservative
//! interval approximation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flitsim::SimConfig;
use mtree::Schedule;
use netcheck::{analyze, check_topology, Discipline};
use optmc::{check_schedule_windowed, random_placement, Algorithm, OccupancyParams};
use std::hint::black_box;
use topo::{Bmin, Mesh, Topology, Torus, UpPolicy};

fn bench_cdg_analyze(c: &mut Criterion) {
    let mesh = Mesh::new(&[8, 8]);
    let bmin = Bmin::new(6, UpPolicy::Straight);
    let torus = Torus::unvirtualized(&[8, 8]);
    c.bench_function("cdg_analyze_mesh8x8", |b| {
        b.iter(|| analyze(black_box(&mesh)));
    });
    c.bench_function("cdg_analyze_bmin64", |b| {
        b.iter(|| analyze(black_box(&bmin)));
    });
    // The interesting case: cycles exist and witnesses must be extracted.
    c.bench_function("cdg_analyze_torus8x8_novc", |b| {
        b.iter(|| analyze(black_box(&torus)));
    });
}

fn bench_check_topology(c: &mut Criterion) {
    // Full report: CDG analysis plus all-pairs routing lints.
    let mesh = Mesh::new(&[8, 8]);
    let mesh_disc = Discipline::DimensionOrder { dims: vec![8, 8] };
    let bmin = Bmin::new(6, UpPolicy::Straight);
    let bmin_disc = Discipline::Turnaround { width: 32 };
    c.bench_function("check_topology_mesh8x8", |b| {
        b.iter(|| check_topology(black_box(&mesh), black_box(&mesh_disc)));
    });
    c.bench_function("check_topology_bmin64", |b| {
        b.iter(|| check_topology(black_box(&bmin), black_box(&bmin_disc)));
    });
}

fn bench_windowed_checker(c: &mut Criterion) {
    let mesh = Mesh::new(&[16, 16]);
    let mut cfg = SimConfig::paragon_like();
    cfg.adaptive = false;
    let mut g = c.benchmark_group("check_schedule_windowed_mesh");
    for k in [32usize, 128] {
        let parts = random_placement(256, k, 11);
        let src = parts[0];
        let hops = optmc::runner::nominal_hops(&mesh, &parts, src);
        let (hold, end) = cfg.effective_pair_ports(hops, 4096, mesh.graph().ports() as u64);
        let chain = Algorithm::OptArch.chain(&mesh, &parts, src);
        let splits = Algorithm::OptArch.splits(hold, end, k);
        let sched = Schedule::build(k, chain.src_pos(), &splits, hold, end);
        let params = OccupancyParams::from_config(&cfg, 4096);
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| {
                check_schedule_windowed(
                    &mesh,
                    black_box(&chain),
                    black_box(&sched),
                    black_box(&params),
                )
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_cdg_analyze,
    bench_check_topology,
    bench_windowed_checker
);
criterion_main!(benches);
