//! GATHER — the dual collective on the paper's trees.
//!
//! Measures eager gather (all leaves transmit at t = 0) against the
//! mirrored multicast bound `t[k]` across tree shapes, on mesh and BMIN.
//! Two asymmetries the send/receive-symmetric model hides show up here:
//! receives gate on `t_recv > t_hold` (the gather-side hold is worse), and
//! child→parent XY paths are not reversed parent→child paths (gather's
//! contention pattern differs from multicast's).
//!
//! ```text
//! cargo run --release -p optmc-bench --bin gather_study \
//!     [--nodes 32] [--bytes 4096] [--trials 16] [--seed 1997]
//! ```

use flitsim::SimConfig;
use optmc::experiments::random_placement;
use optmc::gather::run_gather;
use optmc::{run_multicast, Algorithm};
use optmc_bench::{arg_value, PAPER_TRIALS};
use topo::{Bmin, Mesh, Topology, UpPolicy};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let k: usize = arg_value(&args, "--nodes").map_or(32, |v| v.parse().expect("--nodes"));
    let bytes: u64 = arg_value(&args, "--bytes").map_or(4096, |v| v.parse().expect("--bytes"));
    let trials: usize =
        arg_value(&args, "--trials").map_or(PAPER_TRIALS, |v| v.parse().expect("--trials"));
    let seed: u64 = arg_value(&args, "--seed").map_or(1997, |v| v.parse().expect("--seed"));

    let mesh = Mesh::new(&[16, 16]);
    let bmin = Bmin::new(7, UpPolicy::Straight);
    let cfg = SimConfig::paragon_like();

    println!("Gather vs multicast, {k} nodes, {bytes} bytes, {trials} placements\n");
    println!(
        "{:<24} {:>12} {:>12} {:>12} {:>14}",
        "configuration", "gather", "multicast", "bound t[k]", "gather blocked"
    );
    let topos: [(&dyn Topology, usize); 2] = [(&mesh, 256), (&bmin, 128)];
    for (topo, n) in topos {
        for alg in [Algorithm::UArch, Algorithm::OptArch] {
            let (mut g, mut m, mut b, mut gb) = (0.0, 0.0, 0.0, 0.0);
            for t in 0..trials {
                let parts = random_placement(n, k, seed + t as u64);
                let go = run_gather(topo, &cfg, alg, &parts, parts[0], bytes);
                let mo = run_multicast(topo, &cfg, alg, &parts, parts[0], bytes);
                g += go.latency as f64;
                m += mo.latency as f64;
                b += go.analytic as f64;
                gb += go.sim.blocked_cycles as f64;
            }
            let t = trials as f64;
            println!(
                "{:<24} {:>12.1} {:>12.1} {:>12.1} {:>14.1}",
                format!("{}/{}", topo.name(), alg.display_name(topo)),
                g / t,
                m / t,
                b / t,
                gb / t
            );
        }
    }
    println!(
        "\nReading: the model's send/receive symmetry is optimistic for\n\
         gather — receives serialise on the CPU at t_recv (> t_hold)\n\
         intervals, and child->parent XY paths are not the reversed\n\
         parent->child paths, so OPT-shaped gathers run ~10-12% above the\n\
         mirrored bound while binomial gathers (fewer receives per node)\n\
         match their multicast latency."
    );
}
