//! Planning-service throughput benchmark: drive the sans-io [`plansvc`]
//! engine with repeat-round request workloads (distinct keys × repeats, so
//! every workload mixes cold misses with warm hits) and record plans/sec,
//! hit/miss wall-latency log2-histogram summaries, and the cache-economics
//! counters.
//!
//! Writes `results/bench_plan.json` plus the repo-root `BENCH_plan.json`
//! (records + totals), alongside `BENCH_sim.json`, so plan-path
//! regressions show up in review diffs.
//!
//! ```text
//! cargo run --release -p optmc-bench --bin bench_plan
//! cargo run --release -p optmc-bench --bin bench_plan -- --check BENCH_plan.json
//! ```
//!
//! `--check` re-runs every workload recorded in the committed file and
//! requires the deterministic sentinels to match **exactly**: request /
//! hit / miss / DP-run / eviction counts and the FNV fingerprint of the
//! concatenated response bytes (any drift means the service answered
//! differently, not just slower).  It fails if overall throughput drops
//! below 75% of the committed figure, and — in every mode — if warm cache
//! hits are not at least 10x faster than cold misses.

use std::process::ExitCode;
use std::time::Instant;

use campaign::key::fingerprint;
use optmc_bench::arg_value;
use plansvc::{step_blocking, Engine, EngineConfig, PlanOptions};
use telem::Histogram;

/// Throughput floor for `--check`, as a fraction of committed plans/sec.
const MIN_THROUGHPUT_RATIO: f64 = 0.75;

/// The cache must pay for itself: mean warm-hit latency at least this many
/// times faster than mean cold-miss latency, per workload.
const MIN_HIT_SPEEDUP: f64 = 10.0;

/// One benchmark workload: `distinct` request lines, each issued
/// `repeats` times round-robin, against a `capacity`-plan cache.
struct Workload {
    id: &'static str,
    detail: &'static str,
    capacity: usize,
    certify: bool,
    distinct: usize,
    repeats: usize,
    line: fn(usize) -> String,
}

const WORKLOADS: &[Workload] = &[
    Workload {
        id: "mesh16_32n_16k",
        detail: "16x16 mesh, 32 nodes, 16 KB, 32 placements x 8",
        capacity: 256,
        certify: false,
        distinct: 32,
        repeats: 8,
        line: |i| format!(r#"{{"topo": "mesh:16x16", "k": 32, "seed": {i}, "bytes": 16384}}"#),
    },
    Workload {
        id: "bmin512_32n_4k",
        detail: "512-node BMIN, 32 nodes, 4 KB, 32 placements x 8",
        capacity: 256,
        certify: false,
        distinct: 32,
        repeats: 8,
        line: |i| format!(r#"{{"topo": "bmin:512", "k": 32, "seed": {i}, "bytes": 4096}}"#),
    },
    Workload {
        id: "mesh8_certified",
        detail: "8x8 mesh, 8 nodes, 2 KB, verified certificates, 8 placements x 8",
        capacity: 64,
        certify: true,
        distinct: 8,
        repeats: 8,
        line: |i| format!(r#"{{"topo": "mesh:8x8", "k": 8, "seed": {i}, "bytes": 2048}}"#),
    },
    Workload {
        id: "evicting_mix",
        detail: "mesh:8x8 + bmin:64 mix, 48 keys through a 32-plan cache",
        capacity: 32,
        certify: false,
        distinct: 48,
        repeats: 6,
        line: |i| {
            let topo = if i % 2 == 0 { "mesh:8x8" } else { "bmin:64" };
            let k = 3 + (i % 6);
            format!(r#"{{"topo": "{topo}", "k": {k}, "seed": {i}, "bytes": 1024}}"#)
        },
    },
];

/// Measured results for one workload.
struct PlanBenchRecord {
    id: String,
    detail: String,
    // Deterministic sentinels.
    requests: u64,
    distinct: u64,
    hits: u64,
    misses: u64,
    dp_runs: u64,
    evictions: u64,
    response_fingerprint: u64,
    // Performance (wall-clock; floor-checked, never exact-matched).
    wall_ns: u64,
    plans_per_sec: f64,
    hit_ns: Histogram,
    miss_ns: Histogram,
}

impl PlanBenchRecord {
    fn hit_speedup(&self) -> f64 {
        let hit = self.hit_ns.mean();
        if hit > 0.0 {
            self.miss_ns.mean() / hit
        } else {
            0.0
        }
    }

    fn to_json(&self) -> serde_json::Value {
        let hist = |h: &Histogram| {
            serde_json::json!({
                "count": h.count,
                "mean_ns": h.mean(),
                "p50_ns": h.p50().unwrap_or(0),
                "p95_ns": h.p95().unwrap_or(0),
                "max_ns": h.max,
            })
        };
        serde_json::json!({
            "workload": self.id,
            "detail": self.detail,
            "requests": self.requests,
            "distinct": self.distinct,
            "hits": self.hits,
            "misses": self.misses,
            "dp_runs": self.dp_runs,
            "evictions": self.evictions,
            "response_fingerprint": self.response_fingerprint,
            "wall_ns": self.wall_ns,
            "plans_per_sec": self.plans_per_sec,
            "hit_latency": hist(&self.hit_ns),
            "miss_latency": hist(&self.miss_ns),
            "hit_speedup": self.hit_speedup(),
        })
    }
}

/// Run one workload: rounds of the distinct request lines, the first round
/// all cold, later rounds warm (or re-missing, when `capacity` is below
/// `distinct` — the eviction workload).  Responses are folded into an FNV
/// fingerprint so byte-level determinism is checkable without committing
/// megabytes of plans.
fn run_workload(w: &Workload) -> PlanBenchRecord {
    let mut engine = Engine::new(EngineConfig {
        capacity: w.capacity,
    });
    let opts = PlanOptions { certify: w.certify };
    let mut hit_ns = Histogram::new();
    let mut miss_ns = Histogram::new();
    let mut responses = String::new();
    let mut id = 0u64;
    let started = Instant::now();
    for _round in 0..w.repeats {
        for i in 0..w.distinct {
            id += 1;
            let line = (w.line)(i);
            let before = engine.stats();
            let req_started = Instant::now();
            let answered = step_blocking(&mut engine, id, &line, &opts);
            let elapsed = u64::try_from(req_started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            let after = engine.stats();
            if after.hits > before.hits {
                hit_ns.record(elapsed);
            } else if after.misses > before.misses {
                miss_ns.record(elapsed);
            }
            for (_, text) in answered {
                responses.push_str(&text);
                responses.push('\n');
            }
        }
    }
    let wall_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
    let stats = engine.stats();
    assert_eq!(
        stats.errors, 0,
        "{}: benchmark requests must be valid",
        w.id
    );
    PlanBenchRecord {
        id: w.id.to_string(),
        detail: w.detail.to_string(),
        requests: stats.requests,
        distinct: w.distinct as u64,
        hits: stats.hits,
        misses: stats.misses,
        dp_runs: stats.dp_runs,
        evictions: stats.evictions,
        response_fingerprint: fingerprint(&responses),
        wall_ns,
        plans_per_sec: if wall_ns > 0 {
            stats.requests as f64 * 1e9 / wall_ns as f64
        } else {
            0.0
        },
        hit_ns,
        miss_ns,
    }
}

fn table(records: &[PlanBenchRecord]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<16} {:>8} {:>6} {:>6} {:>8} {:>11} {:>12} {:>12} {:>9}",
        "workload",
        "requests",
        "hits",
        "misses",
        "evicted",
        "plans/sec",
        "hit-mean-us",
        "miss-mean-us",
        "speedup"
    );
    for r in records {
        let _ = writeln!(
            out,
            "{:<16} {:>8} {:>6} {:>6} {:>8} {:>11.0} {:>12.1} {:>12.1} {:>8.0}x",
            r.id,
            r.requests,
            r.hits,
            r.misses,
            r.evictions,
            r.plans_per_sec,
            r.hit_ns.mean() / 1e3,
            r.miss_ns.mean() / 1e3,
            r.hit_speedup(),
        );
    }
    out
}

fn overall_plans_per_sec(records: &[PlanBenchRecord]) -> f64 {
    let requests: u64 = records.iter().map(|r| r.requests).sum();
    let wall: u64 = records.iter().map(|r| r.wall_ns).sum();
    if wall > 0 {
        requests as f64 * 1e9 / wall as f64
    } else {
        0.0
    }
}

/// Per-workload speedup floor, enforced in every mode: a cache that does
/// not beat recomputation by an order of magnitude is not worth serving
/// from.  Skipped for workloads whose hit side is empty.
fn speedup_failures(records: &[PlanBenchRecord]) -> Vec<String> {
    records
        .iter()
        .filter(|r| r.hit_ns.count > 0)
        .filter(|r| r.hit_speedup() < MIN_HIT_SPEEDUP)
        .map(|r| {
            format!(
                "{}: cache hits only {:.1}x faster than misses (mean {:.1}us vs {:.1}us, floor {MIN_HIT_SPEEDUP}x)",
                r.id,
                r.hit_speedup(),
                r.hit_ns.mean() / 1e3,
                r.miss_ns.mean() / 1e3,
            )
        })
        .collect()
}

fn write_files(records: &[PlanBenchRecord]) -> std::io::Result<()> {
    let entries: Vec<_> = records.iter().map(PlanBenchRecord::to_json).collect();
    std::fs::create_dir_all("results")?;
    std::fs::write(
        "results/bench_plan.json",
        serde_json::to_string_pretty(&serde_json::json!({
            "benchmark": "plansvc engine throughput per request workload",
            "records": entries.clone(),
        }))?,
    )?;
    std::fs::write(
        "BENCH_plan.json",
        serde_json::to_string_pretty(&serde_json::json!({
            "benchmark": "multicast-planning service throughput (plan cache + OPT DP)",
            "overall_plans_per_sec": overall_plans_per_sec(records),
            "records": entries,
        }))?,
    )?;
    Ok(())
}

fn check(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench_plan check: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let committed: serde_json::Value = match serde_json::from_str(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("bench_plan check: cannot parse {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let records: Vec<PlanBenchRecord> = WORKLOADS.iter().map(run_workload).collect();
    print!("{}", table(&records));
    let mut failures = speedup_failures(&records);

    let committed_records = committed
        .get("records")
        .and_then(|r| r.as_array().map(<[serde_json::Value]>::to_vec))
        .unwrap_or_default();
    if committed_records.is_empty() {
        failures.push(format!("{path}: no committed records"));
    }
    for c in &committed_records {
        let Some(id) = c.get("workload").and_then(|v| v.as_str()) else {
            failures.push("committed record without a workload id".to_string());
            continue;
        };
        let Some(fresh) = records.iter().find(|r| r.id == id) else {
            failures.push(format!("{id}: workload missing from this binary"));
            continue;
        };
        let sentinels: [(&str, u64); 7] = [
            ("requests", fresh.requests),
            ("distinct", fresh.distinct),
            ("hits", fresh.hits),
            ("misses", fresh.misses),
            ("dp_runs", fresh.dp_runs),
            ("evictions", fresh.evictions),
            ("response_fingerprint", fresh.response_fingerprint),
        ];
        for (key, fresh_value) in sentinels {
            match c.get(key).and_then(serde_json::Value::as_u64) {
                Some(want) if want == fresh_value => {}
                Some(want) => failures.push(format!(
                    "{id}: {key} {fresh_value} != committed {want} (determinism sentinel)"
                )),
                None => failures.push(format!("{id}: committed record lacks `{key}`")),
            }
        }
    }
    if let Some(committed_overall) = committed
        .get("overall_plans_per_sec")
        .and_then(serde_json::Value::as_f64)
    {
        let fresh_overall = overall_plans_per_sec(&records);
        let floor = committed_overall * MIN_THROUGHPUT_RATIO;
        if fresh_overall < floor {
            failures.push(format!(
                "overall throughput {fresh_overall:.0} plans/sec below floor {floor:.0} \
                 ({MIN_THROUGHPUT_RATIO:.2}x committed {committed_overall:.0})"
            ));
        }
    } else {
        failures.push(format!("{path}: missing `overall_plans_per_sec`"));
    }

    if failures.is_empty() {
        println!(
            "\nbench_plan check: OK — {} records match {path} exactly, throughput and hit speedup within bounds",
            committed_records.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("\nbench_plan check: FAILED against {path}:");
        for f in &failures {
            eprintln!("  - {f}");
        }
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(path) = arg_value(&args, "--check") {
        return check(&path);
    }
    let records: Vec<PlanBenchRecord> = WORKLOADS.iter().map(run_workload).collect();
    print!("{}", table(&records));
    let failures = speedup_failures(&records);
    for f in &failures {
        eprintln!("bench_plan: {f}");
    }
    match write_files(&records) {
        Ok(()) => {
            println!("\n[json] results/bench_plan.json");
            println!("[json] BENCH_plan.json");
        }
        Err(e) => eprintln!("could not write bench_plan JSON: {e}"),
    }
    if failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
