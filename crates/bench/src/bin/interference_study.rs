//! INTF — cross-multicast interference: the paper's guarantees are
//! per-multicast; what happens when several tuned multicasts run at once?
//!
//! Batches of 1/2/4/8 concurrent OPT-mesh multicasts with disjoint
//! participant sets; per-multicast slowdown relative to its solo bound
//! measures the interference the single-multicast theorems do not cover.
//!
//! ```text
//! cargo run --release -p optmc-bench --bin interference_study \
//!     [--nodes 16] [--bytes 4096] [--trials 16] [--seed 1997]
//! ```

use flitsim::SimConfig;
use optmc::concurrent::{run_concurrent, McastSpec};
use optmc::experiments::random_placement;
use optmc::Algorithm;
use optmc_bench::{arg_value, Figure, Series, PAPER_TRIALS};
use topo::Mesh;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let k: usize = arg_value(&args, "--nodes").map_or(16, |v| v.parse().expect("--nodes"));
    let bytes: u64 = arg_value(&args, "--bytes").map_or(4096, |v| v.parse().expect("--bytes"));
    let trials: usize =
        arg_value(&args, "--trials").map_or(PAPER_TRIALS, |v| v.parse().expect("--trials"));
    let seed: u64 = arg_value(&args, "--seed").map_or(1997, |v| v.parse().expect("--seed"));

    let mesh = Mesh::new(&[16, 16]);
    let cfg = SimConfig::paragon_like();

    println!("Concurrent OPT-mesh multicasts on a 16x16 mesh ({k} nodes, {bytes} B each)\n");
    println!(
        "{:>8} {:>14} {:>14} {:>12} {:>14}",
        "batch", "mean latency", "solo bound", "slowdown", "blocked/batch"
    );
    let mut points = Vec::new();
    for count in [1usize, 2, 4, 8] {
        let (mut lat, mut bound, mut blocked) = (0.0, 0.0, 0.0);
        let mut measured = 0usize;
        for t in 0..trials {
            let pool = random_placement(256, k * count, seed + t as u64);
            let specs: Vec<McastSpec> = pool
                .chunks(k)
                .map(|c| McastSpec {
                    participants: c.to_vec(),
                    src: c[0],
                    bytes,
                    start: 0,
                })
                .collect();
            let (outs, sim) = run_concurrent(&mesh, &cfg, Algorithm::OptArch, &specs);
            for o in outs {
                lat += o.latency as f64;
                bound += o.analytic as f64;
                measured += 1;
            }
            blocked += sim.blocked_cycles as f64;
        }
        let slowdown = lat / bound;
        println!(
            "{:>8} {:>14.1} {:>14.1} {:>12.3} {:>14.1}",
            count,
            lat / measured as f64,
            bound / measured as f64,
            slowdown,
            blocked / trials as f64
        );
        points.push((count as f64, slowdown));
    }
    Figure {
        id: "intf_concurrent".into(),
        title: format!("per-multicast slowdown vs batch size (k={k}, {bytes}B)"),
        x_label: "concurrent multicasts".into(),
        y_label: "latency / solo bound".into(),
        series: vec![Series {
            label: "slowdown".into(),
            points,
        }],
    }
    .write_csv()
    .expect("write csv");
    println!(
        "\nReading: each multicast is internally contention-free (Theorem 1),\n\
         but nothing coordinates separate multicasts — interference grows\n\
         with batch size.  Extending the §6 temporal idea across multicasts\n\
         is the natural next step the paper leaves open."
    );
}
