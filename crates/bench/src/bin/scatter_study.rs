//! SCATTER — personalized multicast with the size-aware optimal tree.
//!
//! A scatter's messages shrink down the tree (a send delegating `d`
//! destinations carries `d·unit` bytes), so Algorithm 2.1's fixed-size
//! optimum is no longer optimal; the generalised DP in `mtree::scatter`
//! prices each split by the delegated range's size.  This study compares
//! the scatter-optimal tree against the binomial tree (the MPI-style
//! default) and the naive reuse of the multicast shape, on the flit-level
//! simulator.
//!
//! ```text
//! cargo run --release -p optmc-bench --bin scatter_study \
//!     [--nodes 32] [--trials 16] [--seed 1997]
//! ```

use flitsim::SimConfig;
use optmc::experiments::random_placement;
use optmc::scatter::run_scatter;
use optmc::Algorithm;
use optmc_bench::{arg_value, Figure, Series, PAPER_TRIALS};
use topo::Mesh;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let k: usize = arg_value(&args, "--nodes").map_or(32, |v| v.parse().expect("--nodes"));
    let trials: usize =
        arg_value(&args, "--trials").map_or(PAPER_TRIALS, |v| v.parse().expect("--trials"));
    let seed: u64 = arg_value(&args, "--seed").map_or(1997, |v| v.parse().expect("--seed"));

    let mesh = Mesh::new(&[16, 16]);
    let cfg = SimConfig::paragon_like();
    let units = [256u64, 1024, 4096, 16384];

    println!("Scatter on a 16x16 mesh, {k} destinations, {trials} placements\n");
    println!(
        "{:>12} {:>14} {:>14} {:>10}",
        "unit bytes", "scatter-opt", "binomial", "speedup"
    );
    let mut points = Vec::new();
    for unit in units {
        let (mut opt, mut bin) = (0.0, 0.0);
        for t in 0..trials {
            let parts = random_placement(256, k, seed + t as u64);
            opt +=
                run_scatter(&mesh, &cfg, Algorithm::OptArch, &parts, parts[0], unit).latency as f64;
            bin +=
                run_scatter(&mesh, &cfg, Algorithm::UArch, &parts, parts[0], unit).latency as f64;
        }
        let speedup = bin / opt;
        println!(
            "{:>12} {:>14.1} {:>14.1} {:>10.3}",
            unit,
            opt / trials as f64,
            bin / trials as f64,
            speedup
        );
        points.push((unit as f64, speedup));
    }
    Figure {
        id: "scatter_study".into(),
        title: format!("scatter speedup of the size-aware DP over binomial (k={k})"),
        x_label: "unit bytes".into(),
        y_label: "speedup".into(),
        series: vec![Series {
            label: "binomial/opt".into(),
            points,
        }],
    }
    .write_csv()
    .expect("write csv");
    println!(
        "\nReading: scatter amplifies the paper's message — the right tree\n\
         depends on measured size-dependent costs, and with per-destination\n\
         payloads the optimal shape shifts again (shed big ranges early)."
    );
}
