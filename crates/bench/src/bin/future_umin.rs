//! FUT1 — §6's "future work": multicast on a *unidirectional* butterfly MIN,
//! where no node ordering yields contention-free clusters, comparing
//!
//! * naive execution (worms block in the network), vs.
//! * **temporal ordering** (conflicting senders are delayed so they are
//!   "unlikely to send at the same time" — here: guaranteed not to),
//!
//! for both the lexicographic-ordered and the placement-ordered chains.
//!
//! ```text
//! cargo run --release -p optmc-bench --bin future_umin \
//!     [--nodes 32] [--bytes 16384] [--trials 16] [--seed 1997]
//! ```

use flitsim::SimConfig;
use optmc::experiments::random_placement;
use optmc::{run_multicast_with, Algorithm};
use optmc_bench::{arg_value, Figure, Series, PAPER_TRIALS};
use topo::Omega;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let k: usize = arg_value(&args, "--nodes").map_or(32, |v| v.parse().expect("--nodes"));
    let bytes: u64 = arg_value(&args, "--bytes").map_or(16384, |v| v.parse().expect("--bytes"));
    let trials: usize =
        arg_value(&args, "--trials").map_or(PAPER_TRIALS, |v| v.parse().expect("--trials"));
    let seed: u64 = arg_value(&args, "--seed").map_or(1997, |v| v.parse().expect("--seed"));

    let omega = Omega::new(7); // 128 nodes, like the BMIN experiments
    let cfg = SimConfig::paragon_like();

    println!(
        "Unidirectional omega-128: {k}-node multicast, {bytes}-byte messages, {trials} trials\n"
    );
    println!(
        "{:<28} {:>12} {:>14} {:>14}",
        "configuration", "latency", "blocked/run", "cf-fraction"
    );

    let mut rows: Vec<Series> = Vec::new();
    for (alg, ordering) in [
        (Algorithm::OptArch, "lex-ordered"),
        (Algorithm::OptTree, "placement"),
    ] {
        for temporal in [false, true] {
            let mut lat = 0.0;
            let mut blocked = 0.0;
            let mut clean = 0usize;
            for t in 0..trials {
                let parts = random_placement(128, k, seed + t as u64);
                let out = run_multicast_with(&omega, &cfg, alg, &parts, parts[0], bytes, temporal);
                lat += out.latency as f64;
                blocked += out.sim.blocked_cycles as f64;
                clean += usize::from(out.sim.contention_free());
            }
            let label = format!("{ordering}{}", if temporal { "+temporal" } else { "" });
            println!(
                "{:<28} {:>12.1} {:>14.1} {:>14.2}",
                label,
                lat / trials as f64,
                blocked / trials as f64,
                clean as f64 / trials as f64
            );
            rows.push(Series {
                label,
                points: vec![(0.0, lat / trials as f64), (1.0, blocked / trials as f64)],
            });
        }
    }

    Figure {
        id: "future_umin".into(),
        title: format!("omega-128 {k}-node, {bytes}B: naive vs temporal ordering"),
        x_label: "metric(0=latency,1=blocked)".into(),
        y_label: "cycles".into(),
        series: rows,
    }
    .write_csv()
    .expect("write csv");

    println!(
        "\nReading (§6): temporal ordering eliminates in-network blocking\n\
         entirely.  On the *ordered* chain (few residual conflicts) it is\n\
         essentially free; on the placement chain it over-serialises — the\n\
         §6 recipe is ordering first, temporal resolution for the residue,\n\
         not temporal resolution instead of ordering."
    );
}
