//! ABL5 — buffer-depth ablation: wormhole → virtual cut-through.
//!
//! With single-flit buffers (pure wormhole, the paper's regime) a blocked
//! worm sprawls across `L` channels and contention cascades; with buffers
//! deep enough to swallow whole messages (virtual cut-through) a blocked
//! worm collapses into one switch and bothers nobody.  This ablation sweeps
//! the buffer depth and measures how much of the untuned OPT-tree's
//! contention penalty is really a *wormhole* phenomenon — i.e. how much of
//! the paper's motivation evaporates on a VCT machine.
//!
//! ```text
//! cargo run --release -p optmc-bench --bin ablation_buffers \
//!     [--nodes 64] [--bytes 16384] [--trials 16] [--seed 1997]
//! ```

use flitsim::SimConfig;
use optmc::experiments::run_trials;
use optmc_bench::{arg_value, paper_algorithms, Figure, Series, PAPER_TRIALS};
use topo::Mesh;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let k: usize = arg_value(&args, "--nodes").map_or(64, |v| v.parse().expect("--nodes"));
    let bytes: u64 = arg_value(&args, "--bytes").map_or(16384, |v| v.parse().expect("--bytes"));
    let trials: usize =
        arg_value(&args, "--trials").map_or(PAPER_TRIALS, |v| v.parse().expect("--trials"));
    let seed: u64 = arg_value(&args, "--seed").map_or(1997, |v| v.parse().expect("--seed"));

    let mesh = Mesh::new(&[16, 16]);
    let depths = [1u64, 4, 16, 64, 4096];
    println!(
        "Buffer-depth ablation: {k}-node, {bytes}-byte multicast, 16x16 mesh\n\
         (depth 1 = wormhole, the paper's regime; 4096 ≈ virtual cut-through)\n"
    );
    println!(
        "{:>8} {:>12} {:>12} {:>14} {:>14}",
        "depth", "OPT-tree", "OPT-mesh", "tree blocked", "gap %"
    );
    let mut points = Vec::new();
    for depth in depths {
        let mut cfg = SimConfig::paragon_like();
        cfg.buffer_flits = depth;
        let algs = paper_algorithms(&mesh);
        let tree = run_trials(&mesh, &cfg, algs[1].0, k, bytes, trials, seed);
        let mesh_s = run_trials(&mesh, &cfg, algs[2].0, k, bytes, trials, seed);
        let gap = 100.0 * (tree.mean_latency - mesh_s.mean_latency) / mesh_s.mean_latency;
        println!(
            "{:>8} {:>12.1} {:>12.1} {:>14.1} {:>13.2}%",
            depth, tree.mean_latency, mesh_s.mean_latency, tree.mean_blocked, gap
        );
        points.push((depth as f64, gap));
    }
    Figure {
        id: "abl5_buffers".into(),
        title: format!("OPT-tree penalty vs buffer depth (k={k}, {bytes}B)"),
        x_label: "buffer flits".into(),
        y_label: "gap %".into(),
        series: vec![Series {
            label: "opt_tree_gap_pct".into(),
            points,
        }],
    }
    .write_csv()
    .expect("write csv");
    println!(
        "\nReading: deep buffers shrink a blocked worm's footprint, so the\n\
         contention penalty of the untuned OPT-tree shrinks with depth —\n\
         the paper's architecture-dependent ordering matters *because*\n\
         wormhole switching holds whole paths."
    );
}
