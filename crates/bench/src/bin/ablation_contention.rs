//! ABL1 — anatomy of the contention overhead: for each algorithm, how much
//! of the observed latency is the tree (analytic bound) and how much is
//! blocking, as placement density varies.  The paper's Figures 2–3 only show
//! totals; this ablation separates the two effects the paper's §5 narrates
//! (U-mesh loses on tree *shape*; OPT-tree loses on *contention*).
//!
//! ```text
//! cargo run --release -p optmc-bench --bin ablation_contention \
//!     [--bytes 4096] [--trials 16] [--seed 7]
//! ```

use flitsim::SimConfig;
use optmc::experiments::run_trials;
use optmc::Algorithm;
use optmc_bench::{arg_value, paper_algorithms, PAPER_TRIALS};
use topo::Mesh;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bytes: u64 = arg_value(&args, "--bytes").map_or(4096, |v| v.parse().expect("--bytes"));
    let trials: usize =
        arg_value(&args, "--trials").map_or(PAPER_TRIALS, |v| v.parse().expect("--trials"));
    let seed: u64 = arg_value(&args, "--seed").map_or(7, |v| v.parse().expect("--seed"));

    let mesh = Mesh::new(&[16, 16]);
    let cfg = SimConfig::paragon_like();

    println!("Contention anatomy on a 16x16 mesh, {bytes}-byte messages, {trials} trials/point\n");
    println!(
        "{:>6} {:<10} {:>12} {:>12} {:>10} {:>12} {:>10}",
        "nodes", "algorithm", "latency", "analytic", "overhead", "blocked/run", "cf-frac"
    );
    for k in [16usize, 64, 160, 256] {
        for (alg, label) in paper_algorithms(&mesh) {
            let s = run_trials(&mesh, &cfg, alg, k, bytes, trials, seed);
            println!(
                "{:>6} {:<10} {:>12.1} {:>12.1} {:>10.1} {:>12.1} {:>10.2}",
                k,
                label,
                s.mean_latency,
                s.mean_analytic,
                s.mean_latency - s.mean_analytic,
                s.mean_blocked,
                s.contention_free_fraction
            );
        }
        println!();
    }

    // Sanity line for the reader: OPT-mesh must stay contention-free.
    let dense = run_trials(&mesh, &cfg, Algorithm::OptArch, 256, bytes, trials, seed);
    println!(
        "OPT-mesh at full density: contention-free fraction = {:.2} (expect 1.00)",
        dense.contention_free_fraction
    );
}
