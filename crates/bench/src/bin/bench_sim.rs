//! Engine-vitals benchmark: run the paper's figure workloads plus
//! large-scale stress configurations (32x32 mesh, 1024-node BMIN, a 64-way
//! staggered concurrent multicast, a 128x128 mesh, a 4096-node BMIN, a
//! 256x256 mesh, a 16384-node BMIN) with the observability layer's
//! [`flitsim::RunMeta`] instrumentation and record events processed, peak
//! heap, wall-time, events/sec, and — for sharded records — rendezvous
//! rounds per workload.  The large workloads (and the paper's
//! small-message mesh workload) run twice — sequentially and under the
//! sharded engine (`<id>_sh<N>` records, default 4 shards, `--shards N`) —
//! so the two execution strategies are reported separately.
//!
//! Writes `results/bench_sim.json` plus the repo-root `BENCH_sim.json`
//! (records + totals + seed), so regressions in simulator throughput show up
//! in review diffs alongside the latency figures.
//!
//! ```text
//! cargo run --release -p optmc-bench --bin bench_sim \
//!     [--runs 8] [--seed 1997] [--shards 4]
//! cargo run --release -p optmc-bench --bin bench_sim -- --check BENCH_sim.json
//! ```
//!
//! `--check` re-runs every workload recorded in the committed file (with its
//! recorded run count and the file's seed), requires the deterministic
//! sentinels (`events_scheduled`, `peak_heap_events`, `mean_latency`,
//! `sim_cycles`, `shard_rounds`) to match **exactly**, and fails if overall
//! throughput drops below 75% of the committed figure.  Sharded records
//! must additionally agree **exactly** with their sequential base on every
//! merged deterministic sentinel, keep their rendezvous rounds per
//! simulated cycle under the barrier-efficiency ceiling (the
//! window-coalescing gate; rendezvous stall fractions are printed as
//! diagnostics but never gated — they are wall-clock), and — on machines
//! with enough cores — clear the wall-clock speedup floor (1.5x at 4
//! shards on the 128x128 mesh).  Nothing is written in check mode.

use std::process::ExitCode;

use flitsim::SimConfig;
use optmc::Algorithm;
use optmc_bench::{
    arg_value, barrier_efficiency_failures, bench_concurrent, bench_observed, bench_table,
    bench_workload, compare_bench, observer_overhead_failures, parse_bench_file,
    shard_identity_failures, shard_speedup_failures, shard_suffix, write_bench_sim, SimBenchRecord,
};
use topo::{Bmin, Mesh, Topology, UpPolicy};

/// Throughput floor for `--check`, as a fraction of the committed
/// events/sec.  Generous (wall-clock noise, shared CI machines) while still
/// catching order-of-magnitude hot-path regressions.
const MIN_THROUGHPUT_RATIO: f64 = 0.75;

/// Floor for the counters-only observer relative to the NullObserver,
/// measured within one fresh run (`obs_null_*` vs `obs_counters_*`), so
/// machine speed cancels out.  The counters sink is a handful of `u64`
/// adds per event; 5% is the agreed overhead budget.
const MIN_OBS_RATIO: f64 = 0.95;

/// Default shard count for the sharded benchmark variants.
const DEFAULT_SHARDS: usize = 4;

/// Wall-clock speedup floor for the 4-shard 128x128-mesh workload, enforced
/// by `--check` when the machine has at least `shards` cores.
const MIN_SHARD_SPEEDUP: f64 = 1.5;

/// Barrier-efficiency ceiling: rendezvous rounds per simulated cycle for
/// every sharded record.  The adaptive protocol coalesces windows whenever
/// the EIT promises show no cross-shard event below the candidate horizon,
/// so the measured figure sits far below the one-round-per-lookahead-window
/// worst case (~1/rd ≈ 0.07 for the paragon-like config).  The worst
/// committed record (the open-loop 64-way staggered workload) sits at
/// ~0.031 rounds/cycle; the paper small-message workload at ~0.0135 —
/// 2.4x fewer synchronization points per cycle than the fixed-window
/// two-barrier protocol it replaced (0.0328).  Deterministic, hence an
/// exact gate rather than a noise band.
const MAX_ROUNDS_PER_SIM_CYCLE: f64 = 0.04;

/// Run every benchmark workload.  `runs_for(workload_id, default)` decides
/// the per-workload run count: generation passes the defaults through,
/// `--check` substitutes each committed record's count so event totals are
/// comparable.
fn run_all(
    seed: u64,
    shards: usize,
    runs_for: &dyn Fn(&str, usize) -> usize,
) -> Vec<SimBenchRecord> {
    let mesh = Mesh::new(&[16, 16]);
    let bmin = Bmin::new(7, UpPolicy::Straight);
    let big_mesh = Mesh::new(&[32, 32]);
    let big_bmin = Bmin::new(10, UpPolicy::Straight);
    let huge_mesh = Mesh::new(&[128, 128]);
    let huge_bmin = Bmin::new(12, UpPolicy::Straight);
    let giant_mesh = Mesh::new(&[256, 256]);
    let giant_bmin = Bmin::new(14, UpPolicy::Straight);
    let cfg = SimConfig::paragon_like();

    // (id, detail, topology, k, bytes, default runs).  The big configs
    // default to fewer runs: each run is ~20x the events of a paper one.
    let workloads: [(&str, &str, &dyn Topology, usize, u64, usize); 5] = [
        (
            "fig2_mesh_msgsize",
            "16x16 mesh, 32 nodes, 16 KB",
            &mesh,
            32,
            16 * 1024,
            8,
        ),
        (
            "fig3_mesh_nodes",
            "16x16 mesh, 60 nodes, 4 KB",
            &mesh,
            60,
            4096,
            8,
        ),
        (
            "fig4_bmin",
            "128-node BMIN, 32 nodes, 4 KB",
            &bmin,
            32,
            4096,
            8,
        ),
        (
            "big_mesh_32x32",
            "32x32 mesh, 64 nodes, 16 KB",
            &big_mesh,
            64,
            16 * 1024,
            3,
        ),
        (
            "big_bmin_1024",
            "1024-node BMIN, 64 nodes, 4 KB",
            &big_bmin,
            64,
            4096,
            3,
        ),
    ];

    let mut records: Vec<SimBenchRecord> = Vec::new();
    for (id, detail, topo, k, bytes, default_runs) in workloads {
        let runs = runs_for(id, default_runs);
        for alg in Algorithm::PAPER_SET {
            records.push(bench_workload(
                id, detail, topo, &cfg, alg, k, bytes, runs, seed,
            ));
        }
    }

    // Observer-overhead pair: the same mesh workload under the default
    // Null observer and the counters-only sink.  Deterministic sentinels
    // must agree across the pair (observation never perturbs the
    // simulation); the wall-clock ratio is the overhead measurement.
    for (id, counters) in [("obs_null_mesh16", false), ("obs_counters_mesh16", true)] {
        records.push(bench_observed(
            id,
            "16x16 mesh, 32 nodes, 16 KB, observer overhead pair",
            &mesh,
            &cfg,
            Algorithm::OptArch,
            32,
            16 * 1024,
            runs_for(id, 12),
            seed,
            counters,
        ));
    }

    // 64 concurrent 16-node multicasts on the large mesh, arrivals staggered
    // 2000 cycles apart — an open-loop workload whose far-future injections
    // exercise the event queue's overflow path.
    let id = "concurrent_64way";
    records.push(bench_concurrent(
        id,
        "32x32 mesh, 64 x 16-node multicasts, 4 KB, 2000-cycle stagger",
        &big_mesh,
        &cfg,
        Algorithm::OptArch,
        64,
        16,
        4096,
        2000,
        runs_for(id, 3),
        seed,
    ));

    // Huge single-multicast stress workloads (OptArch only — the point is
    // engine scale, not the algorithm comparison the paper set covers).
    let huge: [(&str, &str, &dyn Topology, usize, u64, usize); 4] = [
        (
            "big_mesh_128x128",
            "128x128 mesh, 128 nodes, 16 KB",
            &huge_mesh,
            128,
            16 * 1024,
            1,
        ),
        (
            "big_bmin_4096",
            "4096-node BMIN, 96 nodes, 4 KB",
            &huge_bmin,
            96,
            4096,
            1,
        ),
        (
            "big_mesh_256x256",
            "256x256 mesh, 128 nodes, 16 KB",
            &giant_mesh,
            128,
            16 * 1024,
            1,
        ),
        (
            "big_bmin_16384",
            "16384-node BMIN, 96 nodes, 4 KB",
            &giant_bmin,
            96,
            4096,
            1,
        ),
    ];
    for (id, detail, topo, k, bytes, default_runs) in huge {
        records.push(bench_workload(
            id,
            detail,
            topo,
            &cfg,
            Algorithm::OptArch,
            k,
            bytes,
            runs_for(id, default_runs),
            seed,
        ));
    }

    // Sharded twins of the large workloads: same placements, same seed,
    // shards > 1.  Results are bit-identical to the sequential records (the
    // check enforces it); the separate `_sh<N>` ids keep the two execution
    // strategies' throughput reported side by side.  The fallback counter
    // guard makes silent sequential fallback a loud failure instead of a
    // vacuous comparison.
    let mut sh_cfg = cfg.clone();
    sh_cfg.shards = shards;
    let fallbacks_before = flitsim::metrics::SHARD_FALLBACKS.get();
    let sharded: [(&str, &str, &dyn Topology, usize, u64, usize); 7] = [
        // The paper's small-message mesh workload — the configuration the
        // adaptive window protocol's rounds-per-cycle acceptance figure is
        // measured on (its sequential base is the fig3 OptArch record).
        (
            "fig3_mesh_nodes",
            "16x16 mesh, 60 nodes, 4 KB",
            &mesh,
            60,
            4096,
            8,
        ),
        (
            "big_mesh_32x32",
            "32x32 mesh, 64 nodes, 16 KB",
            &big_mesh,
            64,
            16 * 1024,
            3,
        ),
        (
            "big_bmin_1024",
            "1024-node BMIN, 64 nodes, 4 KB",
            &big_bmin,
            64,
            4096,
            3,
        ),
        (
            "big_mesh_128x128",
            "128x128 mesh, 128 nodes, 16 KB",
            &huge_mesh,
            128,
            16 * 1024,
            1,
        ),
        (
            "big_bmin_4096",
            "4096-node BMIN, 96 nodes, 4 KB",
            &huge_bmin,
            96,
            4096,
            1,
        ),
        (
            "big_mesh_256x256",
            "256x256 mesh, 128 nodes, 16 KB",
            &giant_mesh,
            128,
            16 * 1024,
            1,
        ),
        (
            "big_bmin_16384",
            "16384-node BMIN, 96 nodes, 4 KB",
            &giant_bmin,
            96,
            4096,
            1,
        ),
    ];
    for (base, detail, topo, k, bytes, default_runs) in sharded {
        let id = format!("{base}_sh{shards}");
        let runs = runs_for(&id, default_runs);
        records.push(bench_workload(
            &id,
            detail,
            topo,
            &sh_cfg,
            Algorithm::OptArch,
            k,
            bytes,
            runs,
            seed,
        ));
    }
    let id = format!("concurrent_64way_sh{shards}");
    records.push(bench_concurrent(
        &id,
        "32x32 mesh, 64 x 16-node multicasts, 4 KB, 2000-cycle stagger",
        &big_mesh,
        &sh_cfg,
        Algorithm::OptArch,
        64,
        16,
        4096,
        2000,
        runs_for(&id, 3),
        seed,
    ));
    assert_eq!(
        flitsim::metrics::SHARD_FALLBACKS.get(),
        fallbacks_before,
        "a sharded benchmark workload silently fell back to the sequential engine"
    );
    records
}

fn check(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench check: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let committed = match parse_bench_file(&text) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("bench check: cannot parse {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Re-run with the shard count the committed records were generated at
    // (parsed from their `_sh<N>` ids), so the fresh ids line up.
    let shards = committed
        .records
        .iter()
        .find_map(|r| shard_suffix(&r.workload).map(|(_, n)| n))
        .unwrap_or(DEFAULT_SHARDS);
    let fresh = run_all(committed.seed, shards, &|id, default| {
        committed
            .records
            .iter()
            .find(|r| r.workload == id)
            .map_or(default, |r| r.runs)
    });
    let mut failures = compare_bench(&committed, &fresh, MIN_THROUGHPUT_RATIO);
    failures.extend(observer_overhead_failures(&fresh, MIN_OBS_RATIO));
    failures.extend(shard_identity_failures(&fresh));
    failures.extend(barrier_efficiency_failures(
        &fresh,
        MAX_ROUNDS_PER_SIM_CYCLE,
    ));
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    if cores >= shards {
        failures.extend(shard_speedup_failures(
            &fresh,
            &[(format!("big_mesh_128x128_sh{shards}"), MIN_SHARD_SPEEDUP)],
        ));
    } else {
        println!(
            "bench check: *** SHARD SPEEDUP FLOOR DISARMED *** only {cores} core(s) available \
             but {shards} shards need {shards} — the >={MIN_SHARD_SPEEDUP}x wall-clock gate did \
             NOT run on this machine (sharded-vs-sequential identity still checked)"
        );
    }
    // Barrier-efficiency diagnostics: rounds per simulated cycle is the
    // gated (deterministic) figure; the rendezvous stall fraction is
    // wall-clock, so it is printed for eyes only.
    for r in fresh.iter().filter(|r| r.shard_rounds > 0) {
        println!(
            "bench check: {:<24} {:>7} rendezvous rounds, {:.6} rounds/sim-cycle \
             (ceiling {MAX_ROUNDS_PER_SIM_CYCLE}), stall fraction {:.1}% (not gated)",
            r.workload,
            r.shard_rounds,
            r.rounds_per_sim_cycle(),
            100.0 * r.stall_fraction(shards),
        );
    }
    print!("{}", bench_table(&fresh));
    if failures.is_empty() {
        println!(
            "\nbench check: OK — {} records match {path} exactly, throughput within bounds",
            committed.records.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("\nbench check: FAILED against {path}:");
        for f in &failures {
            eprintln!("  - {f}");
        }
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(path) = arg_value(&args, "--check") {
        return check(&path);
    }
    let runs: Option<usize> = arg_value(&args, "--runs").map(|v| v.parse().expect("--runs"));
    let seed: u64 = arg_value(&args, "--seed").map_or(1997, |v| v.parse().expect("--seed"));
    let shards: usize = arg_value(&args, "--shards").map_or(DEFAULT_SHARDS, |v| {
        let n = v.parse().expect("--shards");
        assert!(n >= 2, "--shards must be at least 2");
        n
    });

    let records = run_all(seed, shards, &|_, default| runs.unwrap_or(default));
    print!("{}", bench_table(&records));
    match write_bench_sim(&records, seed) {
        Ok((detail, root)) => {
            println!("\n[json] {}", detail.display());
            println!("[json] {}", root.display());
        }
        Err(e) => eprintln!("could not write bench_sim JSON: {e}"),
    }
    ExitCode::SUCCESS
}
