//! Engine-vitals benchmark: run the paper's three figure workloads with the
//! observability layer's [`flitsim::RunMeta`] instrumentation and record
//! events processed, peak heap, wall-time, and events/sec per workload.
//!
//! Writes `results/bench_sim.json` plus the repo-root `BENCH_sim.json`
//! (records + totals), so regressions in simulator throughput show up in
//! review diffs alongside the latency figures.
//!
//! ```text
//! cargo run --release -p optmc-bench --bin bench_sim \
//!     [--runs 8] [--seed 1997]
//! ```

use flitsim::SimConfig;
use optmc::Algorithm;
use optmc_bench::{arg_value, bench_table, bench_workload, write_bench_sim, SimBenchRecord};
use topo::{Bmin, Mesh, Topology, UpPolicy};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let runs: usize = arg_value(&args, "--runs").map_or(8, |v| v.parse().expect("--runs"));
    let seed: u64 = arg_value(&args, "--seed").map_or(1997, |v| v.parse().expect("--seed"));

    let mesh = Mesh::new(&[16, 16]);
    let bmin = Bmin::new(7, UpPolicy::Straight);
    let cfg = SimConfig::paragon_like();

    // One workload per figure: (id, detail, topology, k, bytes).
    let workloads: [(&str, &str, &dyn Topology, usize, u64); 3] = [
        (
            "fig2_mesh_msgsize",
            "16x16 mesh, 32 nodes, 16 KB",
            &mesh,
            32,
            16 * 1024,
        ),
        (
            "fig3_mesh_nodes",
            "16x16 mesh, 60 nodes, 4 KB",
            &mesh,
            60,
            4096,
        ),
        (
            "fig4_bmin",
            "128-node BMIN, 32 nodes, 4 KB",
            &bmin,
            32,
            4096,
        ),
    ];

    let mut records: Vec<SimBenchRecord> = Vec::new();
    for (id, detail, topo, k, bytes) in workloads {
        for alg in Algorithm::PAPER_SET {
            records.push(bench_workload(
                id, detail, topo, &cfg, alg, k, bytes, runs, seed,
            ));
        }
    }

    print!("{}", bench_table(&records));
    match write_bench_sim(&records) {
        Ok((detail, root)) => {
            println!("\n[json] {}", detail.display());
            println!("[json] {}", root.display());
        }
        Err(e) => eprintln!("could not write bench_sim JSON: {e}"),
    }
}
