//! TBL-OPT — the behaviour of Algorithm 2.1 across `t_hold : t_end` ratios:
//! latency tables, split tables, and the improvement factor over the
//! binomial tree.  At ratio 1 the OPT tree *is* the binomial tree (the
//! U-mesh/U-min optimality condition the paper cites); as the ratio falls
//! the optimal tree widens toward the sequential tree.
//!
//! ```text
//! cargo run -p optmc-bench --bin table_opt_tree [--k 64] [--end 100]
//! ```

use mtree::analysis::{opt_vs_binomial_ratio, stats};
use mtree::SplitStrategy;
use optmc_bench::{arg_value, Figure, Series};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let k: usize = arg_value(&args, "--k").map_or(64, |v| v.parse().expect("--k"));
    let end: u64 = arg_value(&args, "--end").map_or(100, |v| v.parse().expect("--end"));

    println!("OPT-tree vs binomial across t_hold:t_end ratios (k = {k}, t_end = {end})\n");
    println!(
        "{:>8} {:>10} {:>10} {:>8} {:>7} {:>8} {:>8}",
        "t_hold", "opt", "binomial", "speedup", "depth", "maxdeg", "fwd"
    );
    let holds: Vec<u64> = [0.0, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9, 1.0]
        .iter()
        .map(|f| (end as f64 * f) as u64)
        .collect();
    let mut points = Vec::new();
    for &hold in &holds {
        let strat = SplitStrategy::opt(hold, end, k);
        let st = stats(&strat, hold, end, k);
        let bin = SplitStrategy::Binomial.latency(hold, end, k);
        let ratio = opt_vs_binomial_ratio(hold, end, k);
        println!(
            "{:>8} {:>10} {:>10} {:>8.3} {:>7} {:>8} {:>8}",
            hold, st.latency, bin, ratio, st.depth, st.max_degree, st.forwarders
        );
        points.push((hold as f64, ratio));
    }

    Figure {
        id: "table_opt_tree".into(),
        title: format!("binomial/opt latency ratio vs t_hold (k={k}, t_end={end})"),
        x_label: "t_hold".into(),
        y_label: "ratio".into(),
        series: vec![Series {
            label: "binomial/opt".into(),
            points,
        }],
    }
    .write_csv()
    .expect("write csv");
}
