//! FIG3 — "Comparison of 4-Kbyte multicast trees on a 16x16 mesh":
//! multicast latency vs participant count for U-mesh, OPT-tree and
//! OPT-mesh, flit-level simulated, 16 random placements per point.
//!
//! ```text
//! cargo run --release -p optmc-bench --bin fig3_mesh_nodes \
//!     [--bytes 4096] [--trials 16] [--seed 1997]
//! ```

use flitsim::SimConfig;
use optmc_bench::{arg_value, sweep_nodes, Figure, PAPER_TRIALS};
use topo::Mesh;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bytes: u64 = arg_value(&args, "--bytes").map_or(4096, |v| v.parse().expect("--bytes"));
    let trials: usize =
        arg_value(&args, "--trials").map_or(PAPER_TRIALS, |v| v.parse().expect("--trials"));
    let seed: u64 = arg_value(&args, "--seed").map_or(1997, |v| v.parse().expect("--seed"));

    let mesh = Mesh::new(&[16, 16]);
    let cfg = SimConfig::paragon_like();
    let ks = [4usize, 8, 16, 32, 64, 96, 128, 192, 256];

    let series = sweep_nodes(&mesh, &cfg, &ks, bytes, trials, seed);
    Figure {
        id: "fig3".into(),
        title: format!("Fig 3: {bytes}-byte multicast on a 16x16 mesh ({trials} placements/point)"),
        x_label: "nodes".into(),
        y_label: "multicast latency (cycles)".into(),
        series,
    }
    .emit();
}
