//! FIG2 — "Comparison of 32-node multicast trees on a 16x16 mesh":
//! multicast latency vs message size (0–64 KB) for U-mesh, OPT-tree and
//! OPT-mesh, flit-level simulated, 16 random placements per point.
//!
//! The paper's §5 also reports "the same experiment using 128-node multicast
//! trees" with similar results (FIG2B): pass `--nodes 128`.
//!
//! ```text
//! cargo run --release -p optmc-bench --bin fig2_mesh_msgsize [--nodes 128] \
//!     [--trials 16] [--seed 1997] [--step 8192]
//! ```

use flitsim::SimConfig;
use optmc_bench::{arg_value, sweep_msg_size, Figure, PAPER_TRIALS};
use topo::Mesh;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let nodes: usize = arg_value(&args, "--nodes").map_or(32, |v| v.parse().expect("--nodes"));
    let trials: usize =
        arg_value(&args, "--trials").map_or(PAPER_TRIALS, |v| v.parse().expect("--trials"));
    let seed: u64 = arg_value(&args, "--seed").map_or(1997, |v| v.parse().expect("--seed"));
    let step: u64 = arg_value(&args, "--step").map_or(8192, |v| v.parse().expect("--step"));

    let mesh = Mesh::new(&[16, 16]);
    let cfg = SimConfig::paragon_like();
    // 0k..64k in `step` increments; "0k" is a header-only message.
    let sizes: Vec<u64> = (0..=(65536 / step)).map(|i| i * step).collect();

    let series = sweep_msg_size(&mesh, &cfg, nodes, &sizes, trials, seed);
    let id = if nodes == 32 {
        "fig2".to_string()
    } else {
        format!("fig2_{nodes}n")
    };
    Figure {
        id,
        title: format!("Fig 2: {nodes}-node multicast on a 16x16 mesh ({trials} placements/point)"),
        x_label: "msg bytes".into(),
        y_label: "multicast latency (cycles)".into(),
        series,
    }
    .emit();
}
