//! ABL3 — the address-field cost the model hides.
//!
//! Algorithm 3.1's messages carry the address list `D` of the delegated
//! range, so early sends (large ranges) are physically *longer* than late
//! ones.  The parameterized model prices every send identically; this
//! ablation sweeps the per-address byte cost and measures how far the
//! flit-level latency drifts from the model bound — the fidelity gap of the
//! "addresses are free" approximation.
//!
//! ```text
//! cargo run --release -p optmc-bench --bin ablation_addr_overhead \
//!     [--nodes 64] [--bytes 1024] [--trials 16] [--seed 1997]
//! ```

use flitsim::SimConfig;
use optmc::experiments::run_trials;
use optmc::Algorithm;
use optmc_bench::{arg_value, Figure, Series, PAPER_TRIALS};
use topo::Mesh;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let k: usize = arg_value(&args, "--nodes").map_or(64, |v| v.parse().expect("--nodes"));
    let bytes: u64 = arg_value(&args, "--bytes").map_or(1024, |v| v.parse().expect("--bytes"));
    let trials: usize =
        arg_value(&args, "--trials").map_or(PAPER_TRIALS, |v| v.parse().expect("--trials"));
    let seed: u64 = arg_value(&args, "--seed").map_or(1997, |v| v.parse().expect("--seed"));

    let mesh = Mesh::new(&[16, 16]);
    println!("Address-list overhead: OPT-mesh, {k} nodes, {bytes}-byte payload, 16x16 mesh\n");
    println!(
        "{:>12} {:>14} {:>14} {:>12}",
        "addr bytes", "latency", "model bound", "model err %"
    );
    let mut points = Vec::new();
    for addr_bytes in [0u64, 2, 4, 8, 16] {
        let mut cfg = SimConfig::paragon_like();
        cfg.addr_bytes = addr_bytes;
        let s = run_trials(&mesh, &cfg, Algorithm::OptArch, k, bytes, trials, seed);
        let err = 100.0 * (s.mean_latency - s.mean_analytic) / s.mean_analytic;
        println!(
            "{:>12} {:>14.1} {:>14.1} {:>11.2}%",
            addr_bytes, s.mean_latency, s.mean_analytic, err
        );
        points.push((addr_bytes as f64, err));
    }
    Figure {
        id: "abl3_addr_overhead".into(),
        title: format!("model error vs address bytes (OPT-mesh, k={k}, {bytes}B)"),
        x_label: "addr bytes".into(),
        y_label: "model error %".into(),
        series: vec![Series {
            label: "err_pct".into(),
            points,
        }],
    }
    .write_csv()
    .expect("write csv");
    println!(
        "\nReading: the model's 'addresses are free' approximation costs a few\n\
         percent at realistic address sizes — the early, list-heavy sends sit\n\
         on the multicast's critical path."
    );
}
