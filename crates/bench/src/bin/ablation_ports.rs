//! ABL4 — the port-model ablation.
//!
//! The paper fixes the one-port architecture (§5).  How much does that
//! assumption cost, and can the model simply divide the port-bound `t_hold`
//! by the port count on a multi-port NI?  This ablation equips the mesh
//! nodes with 1/2/4 NI ports under a DMA-style software stack (low CPU
//! hold, so the port is the binding constraint at one port) and runs
//! OPT-mesh with two model variants:
//!
//! * **optimistic** — feed the DP `t_hold = drain/p` (ports fully divide
//!   the injection constraint);
//! * **conservative** — keep the one-port `t_hold = drain`.
//!
//! The punchline is a *negative* result for the optimistic model: all the
//! node's worms still funnel through its router's few output links, so the
//! over-wide trees the optimistic DP builds self-contend and lose.  The
//! conservative model is port-count-invariant — evidence that the paper's
//! one-port assumption is not actually restrictive on a mesh.
//!
//! ```text
//! cargo run --release -p optmc-bench --bin ablation_ports \
//!     [--nodes 32] [--bytes 32768] [--trials 16] [--seed 1997]
//! ```

use flitsim::{SimConfig, SoftwareModel};
use optmc::experiments::random_placement;
use optmc::{run_multicast_opts, Algorithm, RunOptions};
use optmc_bench::{arg_value, PAPER_TRIALS};
use pcm::LinearFn;
use topo::Mesh;

/// A DMA-offload software stack: the CPU hands the send to the NI almost
/// immediately, so the hold time is port-bound, not CPU-bound.
fn dma_like() -> SimConfig {
    SimConfig {
        software: SoftwareModel {
            t_send: LinearFn::new(350.0, 0.15),
            t_recv: LinearFn::new(300.0, 0.15),
            t_hold: LinearFn::new(100.0, 0.01),
        },
        ..SimConfig::paragon_like()
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let k: usize = arg_value(&args, "--nodes").map_or(32, |v| v.parse().expect("--nodes"));
    let bytes: u64 = arg_value(&args, "--bytes").map_or(32768, |v| v.parse().expect("--bytes"));
    let trials: usize =
        arg_value(&args, "--trials").map_or(PAPER_TRIALS, |v| v.parse().expect("--trials"));
    let seed: u64 = arg_value(&args, "--seed").map_or(1997, |v| v.parse().expect("--seed"));

    let cfg = dma_like();
    println!(
        "Port-model ablation: OPT-mesh, {k} nodes, {bytes}-byte messages, 16x16 mesh,\n\
         DMA-style software (CPU hold ≈ {} cycles, drain = {} cycles)\n",
        cfg.software.t_hold.eval(bytes),
        cfg.flits(bytes)
    );
    println!(
        "{:>6} {:>16} {:>14} {:>14} {:>14}",
        "ports", "model", "DP t_hold", "latency", "blocked/run"
    );
    for ports in [1usize, 2, 4] {
        let mesh = Mesh::with_ports(&[16, 16], ports);
        for (label, model_ports) in [("optimistic p", None), ("conservative 1", Some(1))] {
            let opts = RunOptions {
                model_ports,
                ..RunOptions::default()
            };
            let eff = model_ports.unwrap_or(ports as u64);
            let (hold, _) = cfg.effective_pair_ports(16, bytes, eff);
            let mut lat = 0.0;
            let mut blocked = 0.0;
            for t in 0..trials {
                let parts = random_placement(256, k, seed + t as u64);
                let out = run_multicast_opts(
                    &mesh,
                    &cfg,
                    Algorithm::OptArch,
                    &parts,
                    parts[0],
                    bytes,
                    &opts,
                );
                lat += out.latency as f64;
                blocked += out.sim.blocked_cycles as f64;
            }
            println!(
                "{:>6} {:>16} {:>14} {:>14.1} {:>14.1}",
                ports,
                label,
                hold,
                lat / trials as f64,
                blocked / trials as f64
            );
        }
        println!();
    }
    println!(
        "Reading: two negative results for multi-port NIs on a mesh.\n\
         (1) Dividing the injection constraint by the port count is a model\n\
         error: the node's router links re-serialise the worms, and the\n\
         over-wide trees the optimistic DP builds pay for it in blocking.\n\
         (2) Even with the conservative tree, extra ports *hurt*: concurrent\n\
         worms from one node race for the shared first links, and whichever\n\
         wins steals bandwidth from the tree's critical-path send (priority\n\
         inversion).  One port + in-order pacing is exactly what the tuned\n\
         schedule wants — the paper's one-port architecture is not a\n\
         limitation but the right operating point.\n\
         (blocked/run includes waiting at the node's own full injection\n\
         ports, which is how the DMA stack paces itself.)"
    );
}
