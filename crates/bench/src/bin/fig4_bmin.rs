//! BMIN1/ABL2 — the BMIN experiments §5 describes but omits for space:
//! both sweeps (message size at 32 nodes; node count at 4 KB) on the
//! 128-node BMIN of 2×2 switches, comparing U-min / OPT-tree / OPT-min.
//! The paper's stated findings to check:
//!   * "results are quite similar to the results from the mesh experiments",
//!   * "the contention overhead in the OPT-tree is less severe" than on the
//!     mesh, because turnaround routing offers extra paths.
//!
//! `--no-adaptive` disables the adaptive up-phase (ABL2), isolating how much
//! of the BMIN's mildness those extra paths provide.
//!
//! ```text
//! cargo run --release -p optmc-bench --bin fig4_bmin \
//!     [--trials 16] [--seed 1997] [--no-adaptive]
//! ```

use flitsim::SimConfig;
use optmc_bench::{arg_present, arg_value, sweep_msg_size, sweep_nodes, Figure, PAPER_TRIALS};
use topo::{Bmin, UpPolicy};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let trials: usize =
        arg_value(&args, "--trials").map_or(PAPER_TRIALS, |v| v.parse().expect("--trials"));
    let seed: u64 = arg_value(&args, "--seed").map_or(1997, |v| v.parse().expect("--seed"));
    let adaptive = !arg_present(&args, "--no-adaptive");

    let bmin = Bmin::new(7, UpPolicy::Straight);
    let mut cfg = SimConfig::paragon_like();
    cfg.adaptive = adaptive;
    let tag = if adaptive { "" } else { "_noadapt" };

    let sizes: Vec<u64> = (0..=8).map(|i| i * 8192).collect();
    Figure {
        id: format!("fig4a{tag}"),
        title: format!(
            "BMIN: 32-node multicast on a 128-node BMIN vs message size (adaptive={adaptive})"
        ),
        x_label: "msg bytes".into(),
        y_label: "multicast latency (cycles)".into(),
        series: sweep_msg_size(&bmin, &cfg, 32, &sizes, trials, seed),
    }
    .emit();
    println!();

    let ks = [4usize, 8, 16, 32, 48, 64, 96, 128];
    Figure {
        id: format!("fig4b{tag}"),
        title: format!(
            "BMIN: 4096-byte multicast on a 128-node BMIN vs node count (adaptive={adaptive})"
        ),
        x_label: "nodes".into(),
        y_label: "multicast latency (cycles)".into(),
        series: sweep_nodes(&bmin, &cfg, &ks, 4096, trials, seed),
    }
    .emit();
}
