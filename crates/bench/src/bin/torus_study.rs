//! TORUS — applying the §6 programme to the next network in the mesh
//! family: a 16×16 torus with dateline virtual channels.
//!
//! Wraparound halves average distance, but the wrap paths escape the
//! interval hull that makes the dimension-ordered chain contention-free on
//! the mesh (Theorem 1's geometry).  This study quantifies both effects and
//! tests the §6 remedies: does the architecture ordering still help, and
//! does temporal resolution mop up the residue?
//!
//! ```text
//! cargo run --release -p optmc-bench --bin torus_study \
//!     [--nodes 32] [--bytes 4096] [--trials 16] [--seed 1997]
//! ```

use flitsim::SimConfig;
use optmc::experiments::random_placement;
use optmc::{run_multicast_opts, Algorithm, RunOptions};
use optmc_bench::{arg_value, PAPER_TRIALS};
use topo::{Mesh, Topology, Torus};

#[allow(clippy::too_many_arguments)]
fn study(
    topo: &dyn Topology,
    cfg: &SimConfig,
    alg: Algorithm,
    temporal: bool,
    k: usize,
    bytes: u64,
    trials: usize,
    seed: u64,
) -> (f64, f64, f64) {
    let (mut lat, mut blocked, mut clean) = (0.0, 0.0, 0usize);
    let opts = RunOptions {
        temporal,
        ..RunOptions::default()
    };
    for t in 0..trials {
        let parts = random_placement(topo.graph().n_nodes(), k, seed + t as u64);
        let out = run_multicast_opts(topo, cfg, alg, &parts, parts[0], bytes, &opts);
        lat += out.latency as f64;
        blocked += out.sim.blocked_cycles as f64;
        clean += usize::from(out.sim.contention_free());
    }
    (
        lat / trials as f64,
        blocked / trials as f64,
        clean as f64 / trials as f64,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let k: usize = arg_value(&args, "--nodes").map_or(32, |v| v.parse().expect("--nodes"));
    let bytes: u64 = arg_value(&args, "--bytes").map_or(4096, |v| v.parse().expect("--bytes"));
    let trials: usize =
        arg_value(&args, "--trials").map_or(PAPER_TRIALS, |v| v.parse().expect("--trials"));
    let seed: u64 = arg_value(&args, "--seed").map_or(1997, |v| v.parse().expect("--seed"));

    let mesh = Mesh::new(&[16, 16]);
    let torus = Torus::new(&[16, 16]);
    let cfg = SimConfig::paragon_like();

    println!("Mesh vs torus, {k}-node {bytes}-byte multicast, {trials} placements\n");
    println!(
        "{:<26} {:>12} {:>14} {:>10}",
        "configuration", "latency", "blocked/run", "cf-frac"
    );
    let topos: [(&dyn Topology, &str); 2] = [(&mesh, "mesh-16x16"), (&torus, "torus-16x16")];
    for (topo, tname) in topos {
        for (alg, aname) in [
            (Algorithm::UArch, "U-arch"),
            (Algorithm::OptTree, "OPT-tree"),
            (Algorithm::OptArch, "OPT-arch"),
        ] {
            let (lat, blocked, cf) = study(topo, &cfg, alg, false, k, bytes, trials, seed);
            println!(
                "{:<26} {:>12.1} {:>14.1} {:>10.2}",
                format!("{tname}/{aname}"),
                lat,
                blocked,
                cf
            );
        }
        // §6 remedy on the torus: ordered chain + temporal residue cleanup.
        let (lat, blocked, cf) =
            study(topo, &cfg, Algorithm::OptArch, true, k, bytes, trials, seed);
        println!(
            "{:<26} {:>12.1} {:>14.1} {:>10.2}",
            format!("{tname}/OPT-arch+temporal"),
            lat,
            blocked,
            cf
        );
        println!();
    }
    println!(
        "Reading: wraparound buys distance but taxes the ordering — the\n\
         dimension-ordered chain is no longer perfectly contention-free on\n\
         the torus.  The §6 recipe (ordering + temporal residue resolution)\n\
         restores blocking-free execution at a small latency premium."
    );
}
