//! FIG1 — the paper's worked example (Fig. 1): a 6×6 mesh, 7 destinations,
//! `t_hold = 20`, `t_end = 55`.  The OPT-mesh tree completes in 130 time
//! units, the U-mesh (binomial) tree in 165.
//!
//! ```text
//! cargo run -p optmc-bench --bin fig1_example
//! ```

use mtree::{dot, MulticastTree, Schedule, SplitStrategy};
use optmc::{check_schedule, Algorithm};
use topo::{Mesh, NodeId};

fn main() {
    let (hold, end) = (20u64, 55u64);
    let k = 8usize;
    let mesh = Mesh::new(&[6, 6]);
    // A concrete placement of 8 participants on the 6×6 mesh (the paper's
    // figure does not list coordinates; any placement yields the same model
    // latencies because the tree is built over chain positions).
    let parts: Vec<NodeId> = [1u32, 4, 9, 13, 19, 25, 28, 33].map(NodeId).to_vec();
    let src = parts[0];

    println!(
        "FIG1: 6x6 mesh, {} destinations, t_hold={hold}, t_end={end}\n",
        k - 1
    );
    for (alg, expect) in [(Algorithm::OptArch, 130u64), (Algorithm::UArch, 165u64)] {
        let chain = alg.chain(&mesh, &parts, src);
        let splits = alg.splits(hold, end, k);
        let sched = Schedule::build(k, chain.src_pos(), &splits, hold, end);
        let conflicts = check_schedule(&mesh, &chain, &sched);
        let name = alg.display_name(&mesh);
        println!(
            "{name:10}  latency {:4}   (paper: {expect})   depth {}   contention-free: {}",
            sched.latency(),
            sched.depth(),
            conflicts.is_empty(),
        );
        assert_eq!(
            sched.latency(),
            expect,
            "{name} does not reproduce the paper value"
        );
    }

    // Also show the OPT split table the DP produced, and the tree.
    let tab = mtree::opt::opt_table(hold, end, k);
    println!("\nOPT-tree DP table (i: t[i], j_i):");
    for i in 1..=k {
        if i >= 2 {
            println!("  {i}: t={:4}  j={}", tab.t(i), tab.j(i));
        } else {
            println!("  {i}: t={:4}", tab.t(i));
        }
    }

    let chain = Algorithm::OptArch.chain(&mesh, &parts, src);
    let sched = Schedule::build(
        k,
        chain.src_pos(),
        &SplitStrategy::opt(hold, end, k),
        hold,
        end,
    );
    let tree = MulticastTree::from_schedule(&sched);
    let labels: Vec<String> = chain
        .nodes()
        .iter()
        .map(|&n| {
            let c = mesh.coords(n);
            format!("({},{})", c[0], c[1])
        })
        .collect();
    println!(
        "\nOPT-mesh tree (Graphviz DOT):\n{}",
        dot::to_dot(&tree, Some(&labels))
    );
}
