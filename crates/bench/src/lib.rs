//! Shared harness for the figure/table regeneration binaries.
//!
//! Every binary prints a human-readable table to stdout and writes the same
//! series as CSV under `results/` (current directory), so EXPERIMENTS.md
//! rows can be checked against machine-readable data.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

use flitsim::SimConfig;
use optmc::{experiments::run_trials, Algorithm, TrialStats};
use pcm::MsgSize;
use topo::Topology;

/// One plotted series: a label plus (x, y) points.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label ("U-Mesh", "OPT-Tree", ...).
    pub label: String,
    /// (x, mean latency) points.
    pub points: Vec<(f64, f64)>,
}

/// A figure: axis names plus several series over the same x values.
#[derive(Debug, Clone)]
pub struct Figure {
    /// Experiment id ("fig2", ...), used for the CSV filename.
    pub id: String,
    /// Title printed above the table.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The series.
    pub series: Vec<Series>,
}

impl Figure {
    /// Render as an aligned text table (x column + one column per series).
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        let _ = write!(out, "{:>14}", self.x_label);
        for s in &self.series {
            let _ = write!(out, "{:>14}", s.label);
        }
        let _ = writeln!(out);
        let nx = self.series.first().map_or(0, |s| s.points.len());
        for i in 0..nx {
            let _ = write!(out, "{:>14.0}", self.series[0].points[i].0);
            for s in &self.series {
                let _ = write!(out, "{:>14.1}", s.points[i].1);
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Write `results/<id>.json` — the machine-readable record backing the
    /// EXPERIMENTS.md tables.
    pub fn write_json(&self) -> std::io::Result<std::path::PathBuf> {
        let dir = Path::new("results");
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.id));
        let record = serde_json::json!({
            "id": self.id,
            "title": self.title,
            "x_label": self.x_label,
            "y_label": self.y_label,
            "series": self.series.iter().map(|s| serde_json::json!({
                "label": s.label,
                "points": s.points,
            })).collect::<Vec<_>>(),
        });
        fs::write(&path, serde_json::to_string_pretty(&record)?)?;
        Ok(path)
    }

    /// Write `results/<id>.csv`.
    pub fn write_csv(&self) -> std::io::Result<std::path::PathBuf> {
        let dir = Path::new("results");
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.csv", self.id));
        let mut csv = String::new();
        let _ = write!(csv, "{}", self.x_label.replace(' ', "_"));
        for s in &self.series {
            let _ = write!(csv, ",{}", s.label.replace(' ', "_"));
        }
        let _ = writeln!(csv);
        let nx = self.series.first().map_or(0, |s| s.points.len());
        for i in 0..nx {
            let _ = write!(csv, "{}", self.series[0].points[i].0);
            for s in &self.series {
                let _ = write!(csv, ",{}", s.points[i].1);
            }
            let _ = writeln!(csv);
        }
        fs::write(&path, csv)?;
        Ok(path)
    }

    /// Print the table and write CSV + JSON, reporting the paths.
    pub fn emit(&self) {
        print!("{}", self.to_table());
        match self.write_csv() {
            Ok(p) => println!("\n[csv] {}", p.display()),
            Err(e) => eprintln!("could not write CSV: {e}"),
        }
        match self.write_json() {
            Ok(p) => println!("[json] {}", p.display()),
            Err(e) => eprintln!("could not write JSON: {e}"),
        }
    }
}

/// The paper's three mesh algorithms with their plot labels.
pub fn paper_algorithms(topo: &dyn Topology) -> Vec<(Algorithm, String)> {
    Algorithm::PAPER_SET.iter().map(|&a| (a, a.display_name(topo))).collect()
}

/// Sweep message sizes for a fixed participant count (Figure 2 layout).
#[allow(clippy::too_many_arguments)]
pub fn sweep_msg_size(
    topo: &dyn Topology,
    cfg: &SimConfig,
    k: usize,
    sizes: &[MsgSize],
    trials: usize,
    seed: u64,
) -> Vec<Series> {
    paper_algorithms(topo)
        .into_iter()
        .map(|(alg, label)| Series {
            label,
            points: sizes
                .iter()
                .map(|&m| {
                    let s = run_trials(topo, cfg, alg, k, m, trials, seed);
                    (m as f64, s.mean_latency)
                })
                .collect(),
        })
        .collect()
}

/// Sweep participant counts for a fixed message size (Figure 3 layout).
pub fn sweep_nodes(
    topo: &dyn Topology,
    cfg: &SimConfig,
    ks: &[usize],
    bytes: MsgSize,
    trials: usize,
    seed: u64,
) -> Vec<Series> {
    paper_algorithms(topo)
        .into_iter()
        .map(|(alg, label)| Series {
            label,
            points: ks
                .iter()
                .map(|&k| {
                    let s = run_trials(topo, cfg, alg, k, bytes, trials, seed);
                    (k as f64, s.mean_latency)
                })
                .collect(),
        })
        .collect()
}

/// Detailed per-point stats for contention analyses.
pub fn stats_point(
    topo: &dyn Topology,
    cfg: &SimConfig,
    alg: Algorithm,
    k: usize,
    bytes: MsgSize,
    trials: usize,
    seed: u64,
) -> TrialStats {
    run_trials(topo, cfg, alg, k, bytes, trials, seed)
}

/// Minimal `--flag value` argument lookup.
pub fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
}

/// Is a bare `--flag` present?
pub fn arg_present(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// The paper's trial count (§5: 16 random placements per point).
pub const PAPER_TRIALS: usize = 16;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_and_csv_roundtrip() {
        let fig = Figure {
            id: "selftest".into(),
            title: "t".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            series: vec![
                Series { label: "a".into(), points: vec![(1.0, 2.0), (2.0, 4.0)] },
                Series { label: "b".into(), points: vec![(1.0, 3.0), (2.0, 6.0)] },
            ],
        };
        let t = fig.to_table();
        assert!(t.contains('a') && t.contains("6.0"));
    }

    #[test]
    fn arg_parsing() {
        let args: Vec<String> = ["--nodes", "128", "--fast"].iter().map(|s| s.to_string()).collect();
        assert_eq!(arg_value(&args, "--nodes").as_deref(), Some("128"));
        assert_eq!(arg_value(&args, "--seed"), None);
        assert!(arg_present(&args, "--fast"));
        assert!(!arg_present(&args, "--slow"));
    }
}
