//! Shared harness for the figure/table regeneration binaries.
//!
//! Every binary prints a human-readable table to stdout and writes the same
//! series as CSV under `results/` (current directory), so EXPERIMENTS.md
//! rows can be checked against machine-readable data.

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

use flitsim::SimConfig;
use optmc::{experiments::run_trials, Algorithm, TrialStats};
use pcm::MsgSize;
use topo::Topology;

// The figure dataset types (and their `results/` writers) live in the
// `campaign` crate so the sequential figure binaries and the campaign
// aggregation pass share one writer; re-exported here for the binaries.
pub use campaign::{Figure, Series};

/// The paper's three mesh algorithms with their plot labels.
pub fn paper_algorithms(topo: &dyn Topology) -> Vec<(Algorithm, String)> {
    Algorithm::PAPER_SET
        .iter()
        .map(|&a| (a, a.display_name(topo)))
        .collect()
}

/// Sweep message sizes for a fixed participant count (Figure 2 layout).
#[allow(clippy::too_many_arguments)]
pub fn sweep_msg_size(
    topo: &dyn Topology,
    cfg: &SimConfig,
    k: usize,
    sizes: &[MsgSize],
    trials: usize,
    seed: u64,
) -> Vec<Series> {
    paper_algorithms(topo)
        .into_iter()
        .map(|(alg, label)| Series {
            label,
            points: sizes
                .iter()
                .map(|&m| {
                    let s = run_trials(topo, cfg, alg, k, m, trials, seed);
                    (m as f64, s.mean_latency)
                })
                .collect(),
        })
        .collect()
}

/// Sweep participant counts for a fixed message size (Figure 3 layout).
pub fn sweep_nodes(
    topo: &dyn Topology,
    cfg: &SimConfig,
    ks: &[usize],
    bytes: MsgSize,
    trials: usize,
    seed: u64,
) -> Vec<Series> {
    paper_algorithms(topo)
        .into_iter()
        .map(|(alg, label)| Series {
            label,
            points: ks
                .iter()
                .map(|&k| {
                    let s = run_trials(topo, cfg, alg, k, bytes, trials, seed);
                    (k as f64, s.mean_latency)
                })
                .collect(),
        })
        .collect()
}

/// Detailed per-point stats for contention analyses.
pub fn stats_point(
    topo: &dyn Topology,
    cfg: &SimConfig,
    alg: Algorithm,
    k: usize,
    bytes: MsgSize,
    trials: usize,
    seed: u64,
) -> TrialStats {
    run_trials(topo, cfg, alg, k, bytes, trials, seed)
}

// ---------------------------------------------------------------------------
// Engine-vitals benchmarking (RunMeta aggregation).

/// Aggregated engine vitals for one benchmark workload: several multicast
/// runs of the same shape, with each run's [`flitsim::RunMeta`] folded in.
#[derive(Debug, Clone)]
pub struct SimBenchRecord {
    /// Workload id ("fig2_mesh_4k", ...).
    pub workload: String,
    /// Human description (topology, k, bytes).
    pub detail: String,
    /// Algorithm display name.
    pub algorithm: String,
    /// Runs aggregated.
    pub runs: usize,
    /// Total simulator events popped across all runs (deterministic).
    pub events_processed: u64,
    /// Total events scheduled (deterministic).
    pub events_scheduled: u64,
    /// Max pending-event heap depth seen in any run (deterministic).
    pub peak_heap_events: usize,
    /// Max estimated peak heap bytes in any run (deterministic).
    pub peak_heap_bytes: u64,
    /// Total wall-clock nanoseconds inside `Engine::run` (non-deterministic).
    pub wall_ns: u64,
    /// Events per wall-clock second over the whole workload.
    pub events_per_sec: f64,
    /// Mean simulated multicast latency (cycles; deterministic).
    pub mean_latency: f64,
}

/// Run `runs` seeded placements of one multicast workload and aggregate the
/// engine vitals each [`optmc::RunOutcome`] now carries in `sim.meta`.
#[allow(clippy::too_many_arguments)]
pub fn bench_workload(
    workload: &str,
    detail: &str,
    topo: &dyn Topology,
    cfg: &SimConfig,
    alg: Algorithm,
    k: usize,
    bytes: MsgSize,
    runs: usize,
    seed: u64,
) -> SimBenchRecord {
    assert!(runs >= 1);
    let n = topo.graph().n_nodes();
    let mut rec = SimBenchRecord {
        workload: workload.to_string(),
        detail: detail.to_string(),
        algorithm: alg.display_name(topo),
        runs,
        events_processed: 0,
        events_scheduled: 0,
        peak_heap_events: 0,
        peak_heap_bytes: 0,
        wall_ns: 0,
        events_per_sec: 0.0,
        mean_latency: 0.0,
    };
    let mut latency_sum = 0u64;
    for t in 0..runs {
        let parts = optmc::random_placement(n, k, seed + t as u64);
        let out = optmc::run_multicast(topo, cfg, alg, &parts, parts[0], bytes);
        let m = &out.sim.meta;
        rec.events_processed += m.events_processed;
        rec.events_scheduled += m.events_scheduled;
        rec.peak_heap_events = rec.peak_heap_events.max(m.peak_heap_events);
        rec.peak_heap_bytes = rec.peak_heap_bytes.max(m.peak_heap_bytes);
        rec.wall_ns += m.wall_ns;
        latency_sum += out.latency;
    }
    rec.mean_latency = latency_sum as f64 / runs as f64;
    if rec.wall_ns > 0 {
        rec.events_per_sec = rec.events_processed as f64 * 1e9 / rec.wall_ns as f64;
    }
    rec
}

impl SimBenchRecord {
    /// The machine-readable form shared by `results/bench_sim.json` and the
    /// repo-root `BENCH_sim.json`.
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::json!({
            "workload": self.workload,
            "detail": self.detail,
            "algorithm": self.algorithm,
            "runs": self.runs,
            "events_processed": self.events_processed,
            "events_scheduled": self.events_scheduled,
            "peak_heap_events": self.peak_heap_events,
            "peak_heap_bytes": self.peak_heap_bytes,
            "wall_ns": self.wall_ns,
            "events_per_sec": self.events_per_sec,
            "mean_latency": self.mean_latency,
        })
    }
}

/// Render the vitals table for a set of workload records.
pub fn bench_table(records: &[SimBenchRecord]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<22} {:<10} {:>5} {:>12} {:>10} {:>12} {:>12}",
        "workload", "algorithm", "runs", "events", "peak-heap", "wall-ms", "events/sec"
    );
    for r in records {
        let _ = writeln!(
            out,
            "{:<22} {:<10} {:>5} {:>12} {:>10} {:>12.2} {:>12.0}",
            r.workload,
            r.algorithm,
            r.runs,
            r.events_processed,
            r.peak_heap_events,
            r.wall_ns as f64 / 1e6,
            r.events_per_sec,
        );
    }
    out
}

/// Write `results/bench_sim.json` (per-workload records) and the repo-root
/// `BENCH_sim.json` (records + totals) and return both paths.
pub fn write_bench_sim(
    records: &[SimBenchRecord],
) -> std::io::Result<(std::path::PathBuf, std::path::PathBuf)> {
    let dir = Path::new("results");
    fs::create_dir_all(dir)?;
    let entries: Vec<_> = records.iter().map(SimBenchRecord::to_json).collect();
    let detail_path = dir.join("bench_sim.json");
    fs::write(
        &detail_path,
        serde_json::to_string_pretty(&serde_json::json!({
            "benchmark": "engine vitals (RunMeta) per figure workload",
            "records": entries.clone(),
        }))?,
    )?;

    let total_events: u64 = records.iter().map(|r| r.events_processed).sum();
    let total_wall: u64 = records.iter().map(|r| r.wall_ns).sum();
    let overall = if total_wall > 0 {
        total_events as f64 * 1e9 / total_wall as f64
    } else {
        0.0
    };
    let root_path = std::path::PathBuf::from("BENCH_sim.json");
    fs::write(
        &root_path,
        serde_json::to_string_pretty(&serde_json::json!({
            "benchmark": "flit-level engine throughput over the paper's figure workloads",
            "total_events_processed": total_events,
            "total_wall_ns": total_wall,
            "overall_events_per_sec": overall,
            "records": entries,
        }))?,
    )?;
    Ok((detail_path, root_path))
}

/// Minimal `--flag value` argument lookup.
pub fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Is a bare `--flag` present?
pub fn arg_present(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// The paper's trial count (§5: 16 random placements per point).
pub const PAPER_TRIALS: usize = 16;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arg_parsing() {
        let args: Vec<String> = ["--nodes", "128", "--fast"]
            .iter()
            .map(std::string::ToString::to_string)
            .collect();
        assert_eq!(arg_value(&args, "--nodes").as_deref(), Some("128"));
        assert_eq!(arg_value(&args, "--seed"), None);
        assert!(arg_present(&args, "--fast"));
        assert!(!arg_present(&args, "--slow"));
    }
}
