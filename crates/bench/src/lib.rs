//! Shared harness for the figure/table regeneration binaries.
//!
//! Every binary prints a human-readable table to stdout and writes the same
//! series as CSV under `results/` (current directory), so EXPERIMENTS.md
//! rows can be checked against machine-readable data.

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

use flitsim::SimConfig;
use optmc::{experiments::run_trials, run_concurrent, Algorithm, McastSpec, TrialStats};
use pcm::{MsgSize, Time};
use topo::Topology;

// The figure dataset types (and their `results/` writers) live in the
// `campaign` crate so the sequential figure binaries and the campaign
// aggregation pass share one writer; re-exported here for the binaries.
pub use campaign::{Figure, Series};

/// The paper's three mesh algorithms with their plot labels.
pub fn paper_algorithms(topo: &dyn Topology) -> Vec<(Algorithm, String)> {
    Algorithm::PAPER_SET
        .iter()
        .map(|&a| (a, a.display_name(topo)))
        .collect()
}

/// Sweep message sizes for a fixed participant count (Figure 2 layout).
#[allow(clippy::too_many_arguments)]
pub fn sweep_msg_size(
    topo: &dyn Topology,
    cfg: &SimConfig,
    k: usize,
    sizes: &[MsgSize],
    trials: usize,
    seed: u64,
) -> Vec<Series> {
    paper_algorithms(topo)
        .into_iter()
        .map(|(alg, label)| Series {
            label,
            points: sizes
                .iter()
                .map(|&m| {
                    let s = run_trials(topo, cfg, alg, k, m, trials, seed);
                    (m as f64, s.mean_latency)
                })
                .collect(),
        })
        .collect()
}

/// Sweep participant counts for a fixed message size (Figure 3 layout).
pub fn sweep_nodes(
    topo: &dyn Topology,
    cfg: &SimConfig,
    ks: &[usize],
    bytes: MsgSize,
    trials: usize,
    seed: u64,
) -> Vec<Series> {
    paper_algorithms(topo)
        .into_iter()
        .map(|(alg, label)| Series {
            label,
            points: ks
                .iter()
                .map(|&k| {
                    let s = run_trials(topo, cfg, alg, k, bytes, trials, seed);
                    (k as f64, s.mean_latency)
                })
                .collect(),
        })
        .collect()
}

/// Detailed per-point stats for contention analyses.
pub fn stats_point(
    topo: &dyn Topology,
    cfg: &SimConfig,
    alg: Algorithm,
    k: usize,
    bytes: MsgSize,
    trials: usize,
    seed: u64,
) -> TrialStats {
    run_trials(topo, cfg, alg, k, bytes, trials, seed)
}

// ---------------------------------------------------------------------------
// Engine-vitals benchmarking (RunMeta aggregation).

/// Aggregated engine vitals for one benchmark workload: several multicast
/// runs of the same shape, with each run's [`flitsim::RunMeta`] folded in.
#[derive(Debug, Clone)]
pub struct SimBenchRecord {
    /// Workload id ("fig2_mesh_4k", ...).
    pub workload: String,
    /// Human description (topology, k, bytes).
    pub detail: String,
    /// Algorithm display name.
    pub algorithm: String,
    /// Runs aggregated.
    pub runs: usize,
    /// Total simulator events popped across all runs (deterministic).
    pub events_processed: u64,
    /// Total events scheduled (deterministic).
    pub events_scheduled: u64,
    /// Max pending-event heap depth seen in any run (deterministic).
    pub peak_heap_events: usize,
    /// Max estimated peak heap bytes in any run (deterministic).
    pub peak_heap_bytes: u64,
    /// Total wall-clock nanoseconds inside `Engine::run` (non-deterministic).
    pub wall_ns: u64,
    /// Events per wall-clock second over the whole workload.
    pub events_per_sec: f64,
    /// Mean simulated multicast latency (cycles; deterministic).
    pub mean_latency: f64,
    /// Total simulated cycles across all runs (`SimResult::finish` summed;
    /// deterministic).
    pub sim_cycles: u64,
    /// Rendezvous rounds the sharded engine executed across all runs
    /// (0 for sequential records; deterministic — the adaptive window
    /// schedule depends only on the workload and the shard plan, never on
    /// thread timing).
    pub shard_rounds: u64,
    /// Wall-clock nanoseconds shard workers spent stalled at the
    /// rendezvous, summed over shards and runs (non-deterministic;
    /// reported, never gated).
    pub shard_stall_ns: u64,
}

impl SimBenchRecord {
    /// Rendezvous rounds per simulated cycle — the barrier-efficiency
    /// figure (0 for sequential records).  Deterministic, so `--check`
    /// can hold it under a ceiling: window coalescing exists precisely
    /// to keep this far below the one-round-per-lookahead-window worst
    /// case.
    pub fn rounds_per_sim_cycle(&self) -> f64 {
        if self.sim_cycles == 0 {
            return 0.0;
        }
        self.shard_rounds as f64 / self.sim_cycles as f64
    }

    /// Fraction of total shard-thread wall-clock spent stalled at the
    /// rendezvous (non-deterministic; diagnostic only).
    pub fn stall_fraction(&self, shards: usize) -> f64 {
        let total = self.wall_ns.saturating_mul(shards as u64);
        if total == 0 {
            return 0.0;
        }
        self.shard_stall_ns as f64 / total as f64
    }
}

/// Run `runs` seeded placements of one multicast workload and aggregate the
/// engine vitals each [`optmc::RunOutcome`] now carries in `sim.meta`.
#[allow(clippy::too_many_arguments)]
pub fn bench_workload(
    workload: &str,
    detail: &str,
    topo: &dyn Topology,
    cfg: &SimConfig,
    alg: Algorithm,
    k: usize,
    bytes: MsgSize,
    runs: usize,
    seed: u64,
) -> SimBenchRecord {
    assert!(runs >= 1);
    let n = topo.graph().n_nodes();
    let mut rec = SimBenchRecord {
        workload: workload.to_string(),
        detail: detail.to_string(),
        algorithm: alg.display_name(topo),
        runs,
        events_processed: 0,
        events_scheduled: 0,
        peak_heap_events: 0,
        peak_heap_bytes: 0,
        wall_ns: 0,
        events_per_sec: 0.0,
        mean_latency: 0.0,
        sim_cycles: 0,
        shard_rounds: 0,
        shard_stall_ns: 0,
    };
    let mut latency_sum = 0u64;
    let rounds_before = flitsim::metrics::SHARD_ROUNDS.get();
    let stall_before = flitsim::metrics::SHARD_STALL_NS.get();
    for t in 0..runs {
        let parts = optmc::random_placement(n, k, seed + t as u64);
        let out = optmc::run_multicast(topo, cfg, alg, &parts, parts[0], bytes);
        let m = &out.sim.meta;
        rec.events_processed += m.events_processed;
        rec.events_scheduled += m.events_scheduled;
        rec.peak_heap_events = rec.peak_heap_events.max(m.peak_heap_events);
        rec.peak_heap_bytes = rec.peak_heap_bytes.max(m.peak_heap_bytes);
        rec.wall_ns += m.wall_ns;
        rec.sim_cycles += out.sim.finish;
        latency_sum += out.latency;
    }
    rec.shard_rounds = flitsim::metrics::SHARD_ROUNDS.get() - rounds_before;
    rec.shard_stall_ns = flitsim::metrics::SHARD_STALL_NS.get() - stall_before;
    rec.mean_latency = latency_sum as f64 / runs as f64;
    if rec.wall_ns > 0 {
        rec.events_per_sec = rec.events_processed as f64 * 1e9 / rec.wall_ns as f64;
    }
    rec
}

/// [`bench_workload`] under an explicit observer: the `counters` arm runs
/// with the counters-only [`flitsim::TraceSink`] (per-event tallies, slot
/// reuse intact), the other with the default Null observer.  Paired
/// records (`obs_null_*` / `obs_counters_*`) quantify the observer's
/// overhead; [`observer_overhead_failures`] enforces the ceiling.
#[allow(clippy::too_many_arguments)]
pub fn bench_observed(
    workload: &str,
    detail: &str,
    topo: &dyn Topology,
    cfg: &SimConfig,
    alg: Algorithm,
    k: usize,
    bytes: MsgSize,
    runs: usize,
    seed: u64,
    counters: bool,
) -> SimBenchRecord {
    assert!(runs >= 1);
    let n = topo.graph().n_nodes();
    let mut rec = SimBenchRecord {
        workload: workload.to_string(),
        detail: detail.to_string(),
        algorithm: alg.display_name(topo),
        runs,
        events_processed: 0,
        events_scheduled: 0,
        peak_heap_events: 0,
        peak_heap_bytes: 0,
        wall_ns: 0,
        events_per_sec: 0.0,
        mean_latency: 0.0,
        sim_cycles: 0,
        shard_rounds: 0,
        shard_stall_ns: 0,
    };
    let mut latency_sum = 0u64;
    let opts = optmc::RunOptions::default();
    let rounds_before = flitsim::metrics::SHARD_ROUNDS.get();
    let stall_before = flitsim::metrics::SHARD_STALL_NS.get();
    for t in 0..runs {
        let parts = optmc::random_placement(n, k, seed + t as u64);
        let sink = counters.then(flitsim::TraceSink::counters);
        let out =
            optmc::run_multicast_observed(topo, cfg, alg, &parts, parts[0], bytes, &opts, sink);
        let m = &out.sim.meta;
        rec.events_processed += m.events_processed;
        rec.events_scheduled += m.events_scheduled;
        rec.peak_heap_events = rec.peak_heap_events.max(m.peak_heap_events);
        rec.peak_heap_bytes = rec.peak_heap_bytes.max(m.peak_heap_bytes);
        rec.wall_ns += m.wall_ns;
        rec.sim_cycles += out.sim.finish;
        latency_sum += out.latency;
    }
    rec.shard_rounds = flitsim::metrics::SHARD_ROUNDS.get() - rounds_before;
    rec.shard_stall_ns = flitsim::metrics::SHARD_STALL_NS.get() - stall_before;
    rec.mean_latency = latency_sum as f64 / runs as f64;
    if rec.wall_ns > 0 {
        rec.events_per_sec = rec.events_processed as f64 * 1e9 / rec.wall_ns as f64;
    }
    rec
}

/// Run `runs` seeded rounds of a `ways`-way concurrent multicast workload
/// (disjoint participant sets carved from one sampled placement, arrival
/// times staggered `stagger` cycles apart) and aggregate the joint run's
/// engine vitals.  The staggering pushes far-future events through the
/// engine's overflow path, which the closed figure workloads never exercise.
#[allow(clippy::too_many_arguments)]
pub fn bench_concurrent(
    workload: &str,
    detail: &str,
    topo: &dyn Topology,
    cfg: &SimConfig,
    alg: Algorithm,
    ways: usize,
    k: usize,
    bytes: MsgSize,
    stagger: Time,
    runs: usize,
    seed: u64,
) -> SimBenchRecord {
    assert!(runs >= 1 && ways >= 1 && k >= 2);
    let n = topo.graph().n_nodes();
    let mut rec = SimBenchRecord {
        workload: workload.to_string(),
        detail: detail.to_string(),
        algorithm: alg.display_name(topo),
        runs,
        events_processed: 0,
        events_scheduled: 0,
        peak_heap_events: 0,
        peak_heap_bytes: 0,
        wall_ns: 0,
        events_per_sec: 0.0,
        mean_latency: 0.0,
        sim_cycles: 0,
        shard_rounds: 0,
        shard_stall_ns: 0,
    };
    let mut latency_sum = 0u64;
    let rounds_before = flitsim::metrics::SHARD_ROUNDS.get();
    let stall_before = flitsim::metrics::SHARD_STALL_NS.get();
    for t in 0..runs {
        let placement = optmc::random_placement(n, ways * k, seed + t as u64);
        let specs: Vec<McastSpec> = placement
            .chunks(k)
            .enumerate()
            .map(|(i, chunk)| McastSpec {
                participants: chunk.to_vec(),
                src: chunk[0],
                bytes,
                start: stagger * i as Time,
            })
            .collect();
        let (outcomes, sim) = run_concurrent(topo, cfg, alg, &specs);
        let m = &sim.meta;
        rec.events_processed += m.events_processed;
        rec.events_scheduled += m.events_scheduled;
        rec.peak_heap_events = rec.peak_heap_events.max(m.peak_heap_events);
        rec.peak_heap_bytes = rec.peak_heap_bytes.max(m.peak_heap_bytes);
        rec.wall_ns += m.wall_ns;
        rec.sim_cycles += sim.finish;
        latency_sum += outcomes.iter().map(|o| o.latency).sum::<Time>();
    }
    rec.shard_rounds = flitsim::metrics::SHARD_ROUNDS.get() - rounds_before;
    rec.shard_stall_ns = flitsim::metrics::SHARD_STALL_NS.get() - stall_before;
    rec.mean_latency = latency_sum as f64 / (runs * ways) as f64;
    if rec.wall_ns > 0 {
        rec.events_per_sec = rec.events_processed as f64 * 1e9 / rec.wall_ns as f64;
    }
    rec
}

impl SimBenchRecord {
    /// The machine-readable form shared by `results/bench_sim.json` and the
    /// repo-root `BENCH_sim.json`.
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::json!({
            "workload": self.workload,
            "detail": self.detail,
            "algorithm": self.algorithm,
            "runs": self.runs,
            "events_processed": self.events_processed,
            "events_scheduled": self.events_scheduled,
            "peak_heap_events": self.peak_heap_events,
            "peak_heap_bytes": self.peak_heap_bytes,
            "wall_ns": self.wall_ns,
            "events_per_sec": self.events_per_sec,
            "mean_latency": self.mean_latency,
            "sim_cycles": self.sim_cycles,
            "shard_rounds": self.shard_rounds,
            "shard_rounds_per_sim_cycle": self.rounds_per_sim_cycle(),
            "shard_stall_ns": self.shard_stall_ns,
        })
    }
}

/// Render the vitals table for a set of workload records.
pub fn bench_table(records: &[SimBenchRecord]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<22} {:<10} {:>5} {:>12} {:>10} {:>12} {:>12} {:>9}",
        "workload",
        "algorithm",
        "runs",
        "events",
        "peak-heap",
        "wall-ms",
        "events/sec",
        "sh-rounds"
    );
    for r in records {
        let _ = writeln!(
            out,
            "{:<22} {:<10} {:>5} {:>12} {:>10} {:>12.2} {:>12.0} {:>9}",
            r.workload,
            r.algorithm,
            r.runs,
            r.events_processed,
            r.peak_heap_events,
            r.wall_ns as f64 / 1e6,
            r.events_per_sec,
            r.shard_rounds,
        );
    }
    out
}

/// Write `results/bench_sim.json` (per-workload records) and the repo-root
/// `BENCH_sim.json` (records + totals + the generating seed, so `--check`
/// can re-run the exact committed workloads) and return both paths.
pub fn write_bench_sim(
    records: &[SimBenchRecord],
    seed: u64,
) -> std::io::Result<(std::path::PathBuf, std::path::PathBuf)> {
    let dir = Path::new("results");
    fs::create_dir_all(dir)?;
    let entries: Vec<_> = records.iter().map(SimBenchRecord::to_json).collect();
    let detail_path = dir.join("bench_sim.json");
    fs::write(
        &detail_path,
        serde_json::to_string_pretty(&serde_json::json!({
            "benchmark": "engine vitals (RunMeta) per figure workload",
            "seed": seed,
            "records": entries.clone(),
        }))?,
    )?;

    let total_events: u64 = records.iter().map(|r| r.events_processed).sum();
    let total_wall: u64 = records.iter().map(|r| r.wall_ns).sum();
    let overall = if total_wall > 0 {
        total_events as f64 * 1e9 / total_wall as f64
    } else {
        0.0
    };
    // Like-for-like throughput over just the paper figure workloads
    // (`fig*` ids) — comparable across baselines even as stress workloads
    // are added to the suite.
    let paper: Vec<_> = records
        .iter()
        .filter(|r| r.workload.starts_with("fig"))
        .collect();
    let paper_events: u64 = paper.iter().map(|r| r.events_processed).sum();
    let paper_wall: u64 = paper.iter().map(|r| r.wall_ns).sum();
    let paper_overall = if paper_wall > 0 {
        paper_events as f64 * 1e9 / paper_wall as f64
    } else {
        0.0
    };
    let root_path = std::path::PathBuf::from("BENCH_sim.json");
    fs::write(
        &root_path,
        serde_json::to_string_pretty(&serde_json::json!({
            "benchmark": "flit-level engine throughput over the paper's figure workloads",
            "seed": seed,
            "total_events_processed": total_events,
            "total_wall_ns": total_wall,
            "overall_events_per_sec": overall,
            "paper_overall_events_per_sec": paper_overall,
            "records": entries,
        }))?,
    )?;
    Ok((detail_path, root_path))
}

// ---------------------------------------------------------------------------
// Regression checking against a committed BENCH_sim.json.

/// The deterministic sentinels of one committed benchmark record.
#[derive(Debug, Clone, PartialEq)]
pub struct CommittedRecord {
    /// Workload id (matched against fresh records).
    pub workload: String,
    /// Algorithm display name (second half of the match key).
    pub algorithm: String,
    /// Runs the committed record aggregated — the check re-runs with the
    /// same count so event totals are comparable.
    pub runs: usize,
    /// Exact-match determinism sentinel.
    pub events_scheduled: u64,
    /// Exact-match determinism sentinel.
    pub peak_heap_events: usize,
    /// Exact-match determinism sentinel (f64 round-trips bit-exactly
    /// through the JSON writer).
    pub mean_latency: f64,
    /// Exact-match determinism sentinel: total simulated cycles.
    pub sim_cycles: u64,
    /// Exact-match determinism sentinel: rendezvous rounds the sharded
    /// engine executed (0 for sequential records).  Pins the adaptive
    /// window schedule itself — a protocol change that costs extra
    /// synchronization rounds cannot land silently.
    pub shard_rounds: u64,
}

/// A parsed committed `BENCH_sim.json`.
#[derive(Debug, Clone)]
pub struct CommittedBench {
    /// Seed the committed records were generated with.
    pub seed: u64,
    /// Committed overall throughput (the perf-regression baseline).
    pub overall_events_per_sec: f64,
    /// Per-workload records.
    pub records: Vec<CommittedRecord>,
}

/// Parse a committed `BENCH_sim.json`.  Files written before the `seed`
/// field (or the `sim_cycles` / `shard_rounds` sentinels) existed are
/// rejected — regenerate the baseline first.
pub fn parse_bench_file(text: &str) -> Result<CommittedBench, String> {
    let v: serde_json::Value = serde_json::from_str(text).map_err(|e| format!("bad JSON: {e}"))?;
    let field = |obj: &serde_json::Value, key: &str| -> Result<serde_json::Value, String> {
        obj.get(key)
            .cloned()
            .ok_or_else(|| format!("missing `{key}`"))
    };
    let seed = field(&v, "seed")?
        .as_u64()
        .ok_or("`seed` is not an integer")?;
    let overall = field(&v, "overall_events_per_sec")?
        .as_f64()
        .ok_or("`overall_events_per_sec` is not a number")?;
    let mut records = Vec::new();
    for rec in field(&v, "records")?
        .as_array()
        .ok_or("`records` not an array")?
    {
        records.push(CommittedRecord {
            workload: field(rec, "workload")?
                .as_str()
                .ok_or("`workload` not a string")?
                .to_string(),
            algorithm: field(rec, "algorithm")?
                .as_str()
                .ok_or("`algorithm` not a string")?
                .to_string(),
            runs: field(rec, "runs")?
                .as_u64()
                .ok_or("`runs` not an integer")? as usize,
            events_scheduled: field(rec, "events_scheduled")?
                .as_u64()
                .ok_or("`events_scheduled` not an integer")?,
            peak_heap_events: field(rec, "peak_heap_events")?
                .as_u64()
                .ok_or("`peak_heap_events` not an integer")? as usize,
            mean_latency: field(rec, "mean_latency")?
                .as_f64()
                .ok_or("`mean_latency` not a number")?,
            sim_cycles: field(rec, "sim_cycles")?
                .as_u64()
                .ok_or("`sim_cycles` not an integer")?,
            shard_rounds: field(rec, "shard_rounds")?
                .as_u64()
                .ok_or("`shard_rounds` not an integer")?,
        });
    }
    if records.is_empty() {
        return Err("no records".into());
    }
    Ok(CommittedBench {
        seed,
        overall_events_per_sec: overall,
        records,
    })
}

/// Compare freshly-run records against a committed baseline.  Returns the
/// list of failures (empty = pass): the deterministic sentinels
/// (`events_scheduled`, `peak_heap_events`, `mean_latency`) must match
/// **exactly** — any drift means simulation results changed, not just
/// performance — and the fresh overall throughput must be at least
/// `min_throughput_ratio` × the committed one.
pub fn compare_bench(
    committed: &CommittedBench,
    fresh: &[SimBenchRecord],
    min_throughput_ratio: f64,
) -> Vec<String> {
    let mut failures = Vec::new();
    let mut matched_events = 0u64;
    let mut matched_wall = 0u64;
    for c in &committed.records {
        let Some(f) = fresh
            .iter()
            .find(|f| f.workload == c.workload && f.algorithm == c.algorithm)
        else {
            failures.push(format!(
                "{} [{}]: workload missing from fresh run",
                c.workload, c.algorithm
            ));
            continue;
        };
        matched_events += f.events_processed;
        matched_wall += f.wall_ns;
        if f.runs != c.runs {
            failures.push(format!(
                "{} [{}]: run count {} != committed {}",
                c.workload, c.algorithm, f.runs, c.runs
            ));
            continue;
        }
        if f.events_scheduled != c.events_scheduled {
            failures.push(format!(
                "{} [{}]: events_scheduled {} != committed {} (determinism sentinel)",
                c.workload, c.algorithm, f.events_scheduled, c.events_scheduled
            ));
        }
        if f.peak_heap_events != c.peak_heap_events {
            failures.push(format!(
                "{} [{}]: peak_heap_events {} != committed {} (determinism sentinel)",
                c.workload, c.algorithm, f.peak_heap_events, c.peak_heap_events
            ));
        }
        if f.mean_latency.to_bits() != c.mean_latency.to_bits() {
            failures.push(format!(
                "{} [{}]: mean_latency {} != committed {} (determinism sentinel)",
                c.workload, c.algorithm, f.mean_latency, c.mean_latency
            ));
        }
        if f.sim_cycles != c.sim_cycles {
            failures.push(format!(
                "{} [{}]: sim_cycles {} != committed {} (determinism sentinel)",
                c.workload, c.algorithm, f.sim_cycles, c.sim_cycles
            ));
        }
        if f.shard_rounds != c.shard_rounds {
            failures.push(format!(
                "{} [{}]: shard_rounds {} != committed {} (window-schedule sentinel)",
                c.workload, c.algorithm, f.shard_rounds, c.shard_rounds
            ));
        }
    }
    if matched_wall > 0 && committed.overall_events_per_sec > 0.0 {
        let fresh_overall = matched_events as f64 * 1e9 / matched_wall as f64;
        let floor = committed.overall_events_per_sec * min_throughput_ratio;
        if fresh_overall < floor {
            failures.push(format!(
                "overall throughput {fresh_overall:.0} events/sec below floor {floor:.0} \
                 ({min_throughput_ratio:.2}x committed {:.0})",
                committed.overall_events_per_sec
            ));
        }
    }
    failures
}

/// Enforce the counters-only observer's overhead ceiling: for every
/// `obs_null_<tag>` / `obs_counters_<tag>` record pair in `fresh`, the
/// counters throughput must be at least `min_ratio` x the Null one.
/// Both sides come from the same fresh run, so the committed baseline's
/// wall-clock never enters the comparison.
pub fn observer_overhead_failures(fresh: &[SimBenchRecord], min_ratio: f64) -> Vec<String> {
    let mut failures = Vec::new();
    for null in fresh.iter().filter(|r| r.workload.starts_with("obs_null_")) {
        let tag = &null.workload["obs_null_".len()..];
        let counters_id = format!("obs_counters_{tag}");
        let Some(counters) = fresh
            .iter()
            .find(|r| r.workload == counters_id && r.algorithm == null.algorithm)
        else {
            failures.push(format!(
                "{counters_id}: counters half of the observer pair is missing"
            ));
            continue;
        };
        if null.events_per_sec <= 0.0 {
            continue;
        }
        let ratio = counters.events_per_sec / null.events_per_sec;
        if ratio < min_ratio {
            failures.push(format!(
                "{counters_id} [{}]: counters-only observer at {:.1}% of NullObserver \
                 throughput ({:.0} vs {:.0} events/sec, floor {:.0}%)",
                counters.algorithm,
                100.0 * ratio,
                counters.events_per_sec,
                null.events_per_sec,
                100.0 * min_ratio,
            ));
        }
    }
    failures
}

/// Split a sharded workload id (`<base>_sh<k>`) into its base id and shard
/// count; `None` for sequential ids.
pub fn shard_suffix(id: &str) -> Option<(&str, usize)> {
    let at = id.rfind("_sh")?;
    let count: usize = id[at + 3..].parse().ok()?;
    (count >= 2).then(|| (&id[..at], count))
}

/// Bit-identity between every sharded record (`<base>_sh<k>`) and its
/// sequential base: the deterministic sentinels that survive merging —
/// `events_processed`, `events_scheduled`, `mean_latency` — must match
/// **exactly** within one fresh run.  (`peak_heap_events` is exempt: a
/// sharded run keeps several smaller per-shard queues, so its high-water
/// mark is genuinely different.)  Any mismatch means the sharded engine
/// diverged from the sequential one.
pub fn shard_identity_failures(fresh: &[SimBenchRecord]) -> Vec<String> {
    let mut failures = Vec::new();
    for sharded in fresh {
        let Some((base_id, _)) = shard_suffix(&sharded.workload) else {
            continue;
        };
        let Some(base) = fresh
            .iter()
            .find(|r| r.workload == base_id && r.algorithm == sharded.algorithm)
        else {
            failures.push(format!(
                "{}: sequential base record '{base_id}' missing",
                sharded.workload
            ));
            continue;
        };
        if sharded.events_processed != base.events_processed
            || sharded.events_scheduled != base.events_scheduled
        {
            failures.push(format!(
                "{} [{}]: event totals ({}, {}) != sequential ({}, {}) — sharded run diverged",
                sharded.workload,
                sharded.algorithm,
                sharded.events_processed,
                sharded.events_scheduled,
                base.events_processed,
                base.events_scheduled,
            ));
        }
        if sharded.mean_latency.to_bits() != base.mean_latency.to_bits() {
            failures.push(format!(
                "{} [{}]: mean_latency {} != sequential {} — sharded run diverged",
                sharded.workload, sharded.algorithm, sharded.mean_latency, base.mean_latency,
            ));
        }
    }
    failures
}

/// Enforce wall-clock speedup floors for sharded records: for each
/// `(sharded_id, min_speedup)`, the sharded record's throughput must be at
/// least `min_speedup` × its sequential base's.  Only meaningful on a
/// machine with at least as many cores as shards — the caller gates on
/// `std::thread::available_parallelism()`.
pub fn shard_speedup_failures(fresh: &[SimBenchRecord], floors: &[(String, f64)]) -> Vec<String> {
    let mut failures = Vec::new();
    for (id, min_speedup) in floors {
        let Some((base_id, _)) = shard_suffix(id) else {
            failures.push(format!("{id}: not a sharded workload id"));
            continue;
        };
        let Some(sharded) = fresh.iter().find(|r| &r.workload == id) else {
            failures.push(format!("{id}: sharded record missing from fresh run"));
            continue;
        };
        let Some(base) = fresh
            .iter()
            .find(|r| r.workload == base_id && r.algorithm == sharded.algorithm)
        else {
            failures.push(format!("{id}: sequential base '{base_id}' missing"));
            continue;
        };
        if base.events_per_sec <= 0.0 {
            continue;
        }
        let speedup = sharded.events_per_sec / base.events_per_sec;
        if speedup < *min_speedup {
            failures.push(format!(
                "{id}: {speedup:.2}x speedup over '{base_id}' below the {min_speedup:.2}x floor \
                 ({:.0} vs {:.0} events/sec)",
                sharded.events_per_sec, base.events_per_sec,
            ));
        }
    }
    failures
}

/// Barrier-efficiency gate: every sharded record (`<base>_sh<k>`) must keep
/// its rendezvous rounds per simulated cycle at or under
/// `max_rounds_per_cycle`, and must have executed at least one round (zero
/// rounds on a sharded id means the record never actually sharded).  The
/// figure is deterministic — the adaptive window schedule depends only on
/// the workload and the shard plan — so the ceiling is exact, not a noise
/// band: a protocol regression that stops coalescing windows (one round
/// per lookahead window again) blows straight through it.
pub fn barrier_efficiency_failures(
    fresh: &[SimBenchRecord],
    max_rounds_per_cycle: f64,
) -> Vec<String> {
    let mut failures = Vec::new();
    for rec in fresh {
        if shard_suffix(&rec.workload).is_none() {
            continue;
        }
        if rec.shard_rounds == 0 {
            failures.push(format!(
                "{}: sharded record executed zero rendezvous rounds — the run never sharded",
                rec.workload
            ));
            continue;
        }
        let per_cycle = rec.rounds_per_sim_cycle();
        if per_cycle > max_rounds_per_cycle {
            failures.push(format!(
                "{}: {per_cycle:.6} rendezvous rounds per simulated cycle exceeds the \
                 {max_rounds_per_cycle:.6} ceiling ({} rounds over {} cycles) — window \
                 coalescing regressed",
                rec.workload, rec.shard_rounds, rec.sim_cycles
            ));
        }
    }
    failures
}

/// Minimal `--flag value` argument lookup.
pub fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Is a bare `--flag` present?
pub fn arg_present(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// The paper's trial count (§5: 16 random placements per point).
pub const PAPER_TRIALS: usize = 16;

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh(workload: &str, events_scheduled: u64, wall_ns: u64) -> SimBenchRecord {
        SimBenchRecord {
            workload: workload.to_string(),
            detail: String::new(),
            algorithm: "opt".to_string(),
            runs: 2,
            events_processed: events_scheduled,
            events_scheduled,
            peak_heap_events: 10,
            peak_heap_bytes: 0,
            wall_ns,
            events_per_sec: 0.0,
            mean_latency: 123.5,
            sim_cycles: 50_000,
            shard_rounds: 0,
            shard_stall_ns: 0,
        }
    }

    fn committed(records: Vec<CommittedRecord>, overall: f64) -> CommittedBench {
        CommittedBench {
            seed: 1997,
            overall_events_per_sec: overall,
            records,
        }
    }

    fn committed_of(f: &SimBenchRecord) -> CommittedRecord {
        CommittedRecord {
            workload: f.workload.clone(),
            algorithm: f.algorithm.clone(),
            runs: f.runs,
            events_scheduled: f.events_scheduled,
            peak_heap_events: f.peak_heap_events,
            mean_latency: f.mean_latency,
            sim_cycles: f.sim_cycles,
            shard_rounds: f.shard_rounds,
        }
    }

    #[test]
    fn compare_passes_on_identical_sentinels_and_equal_throughput() {
        let f = vec![fresh("a", 1000, 1000), fresh("b", 2000, 1000)];
        let c = committed(f.iter().map(committed_of).collect(), 3000.0 * 1e9 / 2000.0);
        assert_eq!(compare_bench(&c, &f, 0.75), Vec::<String>::new());
    }

    #[test]
    fn compare_flags_sentinel_drift_exactly() {
        let f = vec![fresh("a", 1000, 1000)];
        let mut c = committed(f.iter().map(committed_of).collect(), 0.0);
        c.records[0].events_scheduled += 1;
        c.records[0].mean_latency += 0.5;
        c.records[0].sim_cycles += 1;
        c.records[0].shard_rounds += 1;
        let fails = compare_bench(&c, &f, 0.75);
        assert_eq!(fails.len(), 4, "{fails:?}");
        assert!(fails[0].contains("events_scheduled"));
        assert!(fails[1].contains("mean_latency"));
        assert!(fails[2].contains("sim_cycles"));
        assert!(fails[3].contains("shard_rounds"));
    }

    #[test]
    fn barrier_efficiency_gate_holds_rounds_per_cycle_under_the_ceiling() {
        let mut sharded = fresh("big_sh4", 1000, 1000);
        sharded.shard_rounds = 500; // 500 rounds / 50_000 cycles = 0.01
        let sequential = fresh("big", 1000, 1000); // zero rounds: exempt
        let records = vec![sequential, sharded.clone()];
        assert_eq!(
            barrier_efficiency_failures(&records, 0.02),
            Vec::<String>::new()
        );
        // Over the ceiling: a loud coalescing-regression diagnostic.
        let fails = barrier_efficiency_failures(&records, 0.005);
        assert_eq!(fails.len(), 1, "{fails:?}");
        assert!(fails[0].contains("coalescing regressed"), "{fails:?}");
        // A sharded id with zero rounds never actually sharded.
        sharded.shard_rounds = 0;
        let fails = barrier_efficiency_failures(&[sharded], 0.02);
        assert_eq!(fails.len(), 1, "{fails:?}");
        assert!(fails[0].contains("never sharded"), "{fails:?}");
    }

    #[test]
    fn compare_flags_missing_workload_and_throughput_floor() {
        let f = vec![fresh("a", 1000, 1_000_000)];
        let mut recs: Vec<CommittedRecord> = f.iter().map(committed_of).collect();
        recs.push(CommittedRecord {
            workload: "gone".to_string(),
            algorithm: "opt".to_string(),
            runs: 2,
            events_scheduled: 1,
            peak_heap_events: 1,
            mean_latency: 0.0,
            sim_cycles: 1,
            shard_rounds: 0,
        });
        // Committed overall is 10x what the fresh records achieve.
        let fresh_overall = 1000.0 * 1e9 / 1_000_000.0;
        let c = committed(recs, fresh_overall * 10.0);
        let fails = compare_bench(&c, &f, 0.75);
        assert_eq!(fails.len(), 2, "{fails:?}");
        assert!(fails[0].contains("missing"));
        assert!(fails[1].contains("below floor"));
    }

    #[test]
    fn parse_bench_file_round_trips_written_records() {
        let recs = vec![fresh("a", 1000, 1000), fresh("b", 2000, 3000)];
        let entries: Vec<_> = recs.iter().map(SimBenchRecord::to_json).collect();
        let text = serde_json::to_string_pretty(&serde_json::json!({
            "seed": 42u64,
            "overall_events_per_sec": 1234.5,
            "records": entries,
        }))
        .unwrap();
        let parsed = parse_bench_file(&text).unwrap();
        assert_eq!(parsed.seed, 42);
        assert_eq!(parsed.overall_events_per_sec.to_bits(), 1234.5f64.to_bits());
        assert_eq!(
            parsed.records,
            recs.iter().map(committed_of).collect::<Vec<_>>()
        );
        // A matching fresh set passes with no failures.
        assert_eq!(compare_bench(&parsed, &recs, 0.0), Vec::<String>::new());
    }

    #[test]
    fn parse_bench_file_rejects_seedless_baselines() {
        let err = parse_bench_file(r#"{"records": []}"#).unwrap_err();
        assert!(err.contains("seed"), "{err}");
    }

    #[test]
    fn observer_overhead_pairs_are_enforced() {
        let mut null = fresh("obs_null_mesh16", 10_000, 1_000_000);
        null.events_per_sec = 1000.0;
        let mut counters = fresh("obs_counters_mesh16", 10_000, 1_000_000);
        counters.events_per_sec = 960.0;
        let records = vec![null.clone(), counters.clone()];
        assert_eq!(
            observer_overhead_failures(&records, 0.95),
            Vec::<String>::new()
        );
        // Dropping below the floor fails with a diagnostic.
        let mut slow = counters.clone();
        slow.events_per_sec = 900.0;
        let fails = observer_overhead_failures(&[null.clone(), slow], 0.95);
        assert_eq!(fails.len(), 1, "{fails:?}");
        assert!(fails[0].contains("90.0% of NullObserver"), "{fails:?}");
        // A missing counters half is itself a failure.
        let fails = observer_overhead_failures(&[null], 0.95);
        assert_eq!(fails.len(), 1, "{fails:?}");
        assert!(fails[0].contains("missing"), "{fails:?}");
    }

    #[test]
    fn observed_bench_matches_unobserved_sentinels() {
        let mesh = topo::Mesh::new(&[8, 8]);
        let cfg = SimConfig::paragon_like();
        let null = bench_observed(
            "obs_null_t",
            "",
            &mesh,
            &cfg,
            Algorithm::OptArch,
            12,
            2048,
            2,
            7,
            false,
        );
        let counters = bench_observed(
            "obs_counters_t",
            "",
            &mesh,
            &cfg,
            Algorithm::OptArch,
            12,
            2048,
            2,
            7,
            true,
        );
        // Observation must not perturb the simulation: every deterministic
        // sentinel is identical across the pair.
        assert_eq!(null.events_scheduled, counters.events_scheduled);
        assert_eq!(null.events_processed, counters.events_processed);
        assert_eq!(null.peak_heap_events, counters.peak_heap_events);
        assert_eq!(null.mean_latency.to_bits(), counters.mean_latency.to_bits());
        // Counters keep worm-slab slot reuse, so peak heap bytes agree too.
        assert_eq!(null.peak_heap_bytes, counters.peak_heap_bytes);
    }

    #[test]
    fn arg_parsing() {
        let args: Vec<String> = ["--nodes", "128", "--fast"]
            .iter()
            .map(std::string::ToString::to_string)
            .collect();
        assert_eq!(arg_value(&args, "--nodes").as_deref(), Some("128"));
        assert_eq!(arg_value(&args, "--seed"), None);
        assert!(arg_present(&args, "--fast"));
        assert!(!arg_present(&args, "--slow"));
    }
}
