//! Whole-system sweeps: every algorithm on every topology delivers to every
//! destination, deterministically.

use flitsim::SimConfig;
use optmc::experiments::random_placement;
use optmc::{run_multicast, Algorithm};
use topo::{Bmin, Mesh, Topology, UpPolicy};

const ALL: [Algorithm; 5] = [
    Algorithm::OptArch,
    Algorithm::UArch,
    Algorithm::OptTree,
    Algorithm::BinomialTree,
    Algorithm::Sequential,
];

fn topologies() -> Vec<Box<dyn Topology>> {
    vec![
        Box::new(Mesh::new(&[16, 16])),
        Box::new(Mesh::new(&[8, 4, 2])), // 3-D mesh exercises general e-cube
        Box::new(Mesh::new(&[64])),      // 1-D line
        Box::new(Bmin::new(7, UpPolicy::Straight)),
        Box::new(Bmin::new(5, UpPolicy::DestColumn)),
    ]
}

#[test]
fn every_algorithm_delivers_on_every_topology() {
    let cfg = SimConfig::paragon_like();
    for topo in topologies() {
        let n = topo.graph().n_nodes();
        for k in [2usize, 5, 16] {
            let parts = random_placement(n, k, 99);
            for alg in ALL {
                let out = run_multicast(topo.as_ref(), &cfg, alg, &parts, parts[0], 1024);
                assert_eq!(
                    out.sim.messages.len(),
                    k - 1,
                    "{} on {}",
                    alg.display_name(topo.as_ref()),
                    topo.name()
                );
                // Every destination exactly once.
                for &d in &parts[1..] {
                    assert!(
                        out.sim.delivered_to(d).is_some(),
                        "{d:?} missed by {} on {}",
                        alg.display_name(topo.as_ref()),
                        topo.name()
                    );
                }
            }
        }
    }
}

#[test]
fn runs_are_deterministic() {
    let cfg = SimConfig::paragon_like();
    for topo in topologies() {
        let n = topo.graph().n_nodes();
        let parts = random_placement(n, 12, 5);
        for alg in [Algorithm::OptArch, Algorithm::OptTree] {
            let a = run_multicast(topo.as_ref(), &cfg, alg, &parts, parts[0], 4096);
            let b = run_multicast(topo.as_ref(), &cfg, alg, &parts, parts[0], 4096);
            assert_eq!(a.latency, b.latency);
            assert_eq!(a.sim.blocked_cycles, b.sim.blocked_cycles);
            assert_eq!(
                format!("{:?}", a.sim.messages),
                format!("{:?}", b.sim.messages),
                "{} on {}",
                alg.display_name(topo.as_ref()),
                topo.name()
            );
        }
    }
}

/// The analytic bound is a true lower bound for every run (contention only
/// ever adds latency; the slack covers distance-insensitivity rounding).
#[test]
fn analytic_bound_is_lower_bound() {
    let cfg = SimConfig::paragon_like();
    let mesh = Mesh::new(&[16, 16]);
    for seed in 0..8u64 {
        let parts = random_placement(256, 24, seed);
        for alg in ALL {
            let out = run_multicast(&mesh, &cfg, alg, &parts, parts[0], 8192);
            let slack = 2 * 30; // head-latency variation across the mesh
            assert!(
                out.latency as i64 >= out.analytic as i64 - slack,
                "{}: {} < bound {}",
                alg.display_name(&mesh),
                out.latency,
                out.analytic
            );
        }
    }
}

/// Message sizes from empty (header-only) to 64 KiB all flow through.
#[test]
fn size_extremes() {
    let cfg = SimConfig::paragon_like();
    let mesh = Mesh::new(&[16, 16]);
    let parts = random_placement(256, 8, 1);
    for bytes in [0u64, 1, 65536] {
        let out = run_multicast(&mesh, &cfg, Algorithm::OptArch, &parts, parts[0], bytes);
        assert_eq!(out.sim.messages.len(), 7, "bytes={bytes}");
        assert!(out.sim.contention_free(), "bytes={bytes}");
    }
}
