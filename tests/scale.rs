//! Scale smoke tests: the engine must stay event-bound (not cycle-bound) so
//! big messages and dense multicasts finish in sane wall time.  These
//! mirror the heaviest points of Figures 2/3.

use std::time::Instant;

use flitsim::SimConfig;
use optmc::experiments::random_placement;
use optmc::{run_multicast, Algorithm};
use topo::{Bmin, Mesh, NodeId, UpPolicy};

/// The heaviest Figure 2 point: 32 nodes, 64 KiB messages.
#[test]
fn fig2_heaviest_point_is_fast() {
    let mesh = Mesh::new(&[16, 16]);
    let cfg = SimConfig::paragon_like();
    let parts = random_placement(256, 32, 0);
    let t0 = Instant::now();
    let out = run_multicast(&mesh, &cfg, Algorithm::OptArch, &parts, parts[0], 65536);
    assert_eq!(out.sim.messages.len(), 31);
    assert!(
        t0.elapsed().as_secs() < 5,
        "64 KiB multicast took {:?} — engine has gone cycle-bound",
        t0.elapsed()
    );
}

/// Full-density broadcast: every node of the 16×16 mesh participates.
#[test]
fn full_mesh_broadcast() {
    let mesh = Mesh::new(&[16, 16]);
    let cfg = SimConfig::paragon_like();
    let parts: Vec<NodeId> = (0..256u32).map(NodeId).collect();
    let out = run_multicast(&mesh, &cfg, Algorithm::OptArch, &parts, NodeId(93), 4096);
    assert_eq!(out.sim.messages.len(), 255);
    assert!(
        out.sim.contention_free(),
        "blocked {}",
        out.sim.blocked_cycles
    );
}

/// Full-density broadcast on the BMIN.
#[test]
fn full_bmin_broadcast() {
    let bmin = Bmin::new(7, UpPolicy::Straight);
    let cfg = SimConfig::paragon_like();
    let parts: Vec<NodeId> = (0..128u32).map(NodeId).collect();
    let out = run_multicast(&bmin, &cfg, Algorithm::OptArch, &parts, NodeId(41), 4096);
    assert_eq!(out.sim.messages.len(), 127);
    assert_eq!(out.sim.blocked_cycles, 0);
}

/// A large network well beyond the paper's sizes: 32×32 mesh, 256-node
/// multicast — the library, unlike the paper's testbed, should scale.
#[test]
fn beyond_paper_scale() {
    let mesh = Mesh::new(&[32, 32]);
    let cfg = SimConfig::paragon_like();
    let parts = random_placement(1024, 256, 5);
    let t0 = Instant::now();
    let out = run_multicast(&mesh, &cfg, Algorithm::OptArch, &parts, parts[0], 8192);
    assert_eq!(out.sim.messages.len(), 255);
    assert!(out.sim.contention_free());
    assert!(t0.elapsed().as_secs() < 10, "took {:?}", t0.elapsed());
}
