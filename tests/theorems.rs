//! Operational checks of the paper's two theorems.
//!
//! * Theorem 1: "The implementation of parameterized multicast trees in
//!   meshes using the OPT-mesh algorithm is optimal" — i.e. the
//!   dimension-ordered embedding is contention-free, so the flit-level run
//!   meets the model's lower bound.
//! * Theorem 2: the same for OPT-min on BMINs with turnaround routing.  In
//!   this reproduction the guarantee is operational: the adaptive up-phase
//!   resolves residual up-channel collisions, so simulated runs block for
//!   zero cycles.

use flitsim::SimConfig;
use mtree::Schedule;
use optmc::experiments::random_placement;
use optmc::{check_schedule, run_multicast, Algorithm};
use topo::{Bmin, Mesh, UpPolicy};

/// Theorem 1, static form: OPT-mesh and U-mesh schedules on random
/// placements of a 16×16 mesh never share a channel between
/// concurrently-live sends.
#[test]
fn theorem1_static_contention_freedom() {
    let mesh = Mesh::new(&[16, 16]);
    for seed in 0..30u64 {
        for k in [8usize, 32, 96] {
            let parts = random_placement(256, k, seed * 7 + k as u64);
            let src = parts[seed as usize % k];
            for alg in [Algorithm::OptArch, Algorithm::UArch] {
                let chain = alg.chain(&mesh, &parts, src);
                let splits = alg.splits(20, 55, k);
                let sched = Schedule::build(k, chain.src_pos(), &splits, 20, 55);
                let conflicts = check_schedule(&mesh, &chain, &sched);
                assert!(
                    conflicts.is_empty(),
                    "seed {seed} k {k} {:?}: {conflicts:?}",
                    alg.display_name(&mesh)
                );
            }
        }
    }
}

/// Theorem 1, dynamic form: the flit-level OPT-mesh run blocks zero cycles
/// and lands within the distance-sensitivity slack of the model bound.
#[test]
fn theorem1_simulated_optimality() {
    let mesh = Mesh::new(&[16, 16]);
    let cfg = SimConfig::paragon_like();
    let slack = 2 * 30 * cfg.router_delay; // diameter of head-latency variation
    for seed in 0..10u64 {
        let parts = random_placement(256, 32, seed);
        let out = run_multicast(&mesh, &cfg, Algorithm::OptArch, &parts, parts[0], 4096);
        assert_eq!(out.sim.blocked_cycles, 0, "seed {seed}");
        assert!(
            out.overhead_signed().unsigned_abs() <= slack,
            "seed {seed}: latency {} vs bound {}",
            out.latency,
            out.analytic
        );
    }
}

/// Theorem 2, dynamic form: OPT-min and U-min on the 128-node BMIN with the
/// adaptive turnaround up-phase block zero cycles.
#[test]
fn theorem2_simulated_optimality() {
    let bmin = Bmin::new(7, UpPolicy::Straight);
    let cfg = SimConfig::paragon_like();
    for seed in 0..10u64 {
        for alg in [Algorithm::OptArch, Algorithm::UArch] {
            let parts = random_placement(128, 32, seed);
            let out = run_multicast(&bmin, &cfg, alg, &parts, parts[0], 4096);
            assert_eq!(
                out.sim.blocked_cycles,
                0,
                "seed {seed} {}",
                alg.display_name(&bmin)
            );
        }
    }
}

/// The converse: the untuned OPT-tree *does* contend on the mesh (that is
/// the paper's motivation), and the simulator agrees with the static
/// checker's verdict often enough to be its oracle.
#[test]
fn untuned_opt_tree_pays_for_its_ordering() {
    let mesh = Mesh::new(&[16, 16]);
    let cfg = SimConfig::paragon_like();
    let mut blocked_runs = 0;
    let trials = 12;
    for seed in 0..trials {
        let parts = random_placement(256, 32, seed);
        let out = run_multicast(&mesh, &cfg, Algorithm::OptTree, &parts, parts[0], 16384);
        blocked_runs += u32::from(out.sim.blocked_cycles > 0);
    }
    assert!(
        blocked_runs >= trials as u32 / 2,
        "only {blocked_runs}/{trials} OPT-tree runs contended"
    );
}

/// §5's cross-architecture claim: "the contention overhead in the OPT-tree
/// is less severe [on BMIN] ... extra paths allow the BMIN network to reduce
/// the effect of contention".
#[test]
fn bmin_softens_opt_tree_contention() {
    let mesh = Mesh::new(&[16, 16]);
    let bmin = Bmin::new(7, UpPolicy::Straight);
    let cfg = SimConfig::paragon_like();
    let (mut mesh_blocked, mut bmin_blocked) = (0u64, 0u64);
    for seed in 0..12u64 {
        let parts = random_placement(128, 32, seed);
        mesh_blocked += run_multicast(&mesh, &cfg, Algorithm::OptTree, &parts, parts[0], 16384)
            .sim
            .blocked_cycles;
        bmin_blocked += run_multicast(&bmin, &cfg, Algorithm::OptTree, &parts, parts[0], 16384)
            .sim
            .blocked_cycles;
    }
    assert!(
        bmin_blocked < mesh_blocked,
        "BMIN {bmin_blocked} vs mesh {mesh_blocked} blocked cycles"
    );
}
