//! The measurement loop closes: simulator ⇄ analytic model ⇄ calibration.
//!
//! The paper's methodology only works if the parameters you measure at user
//! level actually predict multicast latency.  These tests pin the three-way
//! agreement between (a) the flit-level simulator, (b) the closed-form
//! `SimConfig` predictions, and (c) affine fits from in-simulator
//! measurements.

use flitsim::SimConfig;
use optmc::measure;
use optmc::{run_multicast, Algorithm};
use pcm::predict;
use topo::{Mesh, NodeId, Topology};

/// (a) == (b): one message, every size, exact.
#[test]
fn sim_matches_closed_form_p2p() {
    let mesh = Mesh::new(&[16, 16]);
    let cfg = SimConfig::paragon_like();
    let (src, dst) = (NodeId(3), NodeId(200));
    let hops = mesh.distance(src, dst);
    for bytes in [0u64, 1, 7, 8, 9, 1000, 4096, 65536] {
        assert_eq!(
            measure::measure_t_end(&mesh, &cfg, src, dst, bytes),
            cfg.predict_p2p(hops, bytes),
            "bytes={bytes}"
        );
    }
}

/// (b) == (c): fitted affine functions evaluate to the measured points.
#[test]
fn calibration_predicts_unseen_sizes() {
    let mesh = Mesh::new(&[16, 16]);
    let cfg = SimConfig::paragon_like();
    let (src, dst) = (NodeId(0), NodeId(136));
    let train = [256u64, 2048, 8192, 32768];
    let (hold_fn, end_fn) = measure::calibrate(&mesh, &cfg, src, dst, &train);
    // Predict sizes the fit never saw; rounding gives ±2 cycles.
    for bytes in [512u64, 4096, 16384] {
        let measured_end = measure::measure_t_end(&mesh, &cfg, src, dst, bytes);
        let err = (end_fn.eval(bytes) as i64 - measured_end as i64).abs();
        assert!(err <= 2, "t_end err {err} at {bytes}");
        let measured_hold = measure::measure_t_hold(&mesh, &cfg, src, dst, bytes, 8);
        let err = (hold_fn.eval(bytes) as i64 - measured_hold as i64).abs();
        assert!(err <= 2, "t_hold err {err} at {bytes}");
    }
}

/// The full loop: the OPT-mesh multicast latency observed in the simulator
/// equals the `pcm` prediction computed from the calibrated pair.
#[test]
fn calibrated_model_predicts_multicast_latency() {
    let mesh = Mesh::new(&[16, 16]);
    let cfg = SimConfig::paragon_like();
    let parts: Vec<NodeId> = (0..16u32).map(|i| NodeId(i * 16 + (i * 5) % 16)).collect();
    let out = run_multicast(&mesh, &cfg, Algorithm::OptArch, &parts, parts[0], 4096);
    let (hold, end) = out.pair;
    let predicted = mtree::opt::opt_latency(hold, end, 16);
    assert_eq!(out.analytic, predicted);
    let err = (out.latency as i64 - predicted as i64).abs();
    assert!(err <= 60, "sim {} vs model {predicted}", out.latency);
}

/// `SimConfig::to_comm_params` round-trips with `effective_pair`.
#[test]
fn comm_params_projection_consistent() {
    let cfg = SimConfig::paragon_like();
    let params = cfg.to_comm_params(16.0);
    for bytes in [64u64, 1024, 8192, 65536] {
        let (h1, e1) = cfg.effective_pair(16, bytes);
        let (h2, e2) = params.pair(bytes);
        let dh = (h1 as i64 - h2 as i64).abs();
        let de = (e1 as i64 - e2 as i64).abs();
        assert!(dh <= 2, "hold mismatch at {bytes}: {h1} vs {h2}");
        assert!(de <= 2, "end mismatch at {bytes}: {e1} vs {e2}");
    }
}

/// LogP is the parameterized model at a point: its broadcast bound equals
/// the OPT DP on the projected pair.
#[test]
fn logp_projection_agrees_with_opt_dp() {
    let lp = pcm::logp::LogP {
        l: 500,
        o: 300,
        g: 250,
        p: 64,
    };
    for k in [2usize, 8, 32, 64] {
        assert_eq!(
            lp.broadcast_lower_bound(k),
            mtree::opt::opt_latency(lp.t_hold(), lp.t_end(), k),
            "k={k}"
        );
    }
}

/// Sequential/binomial predictors in `pcm` agree with the generic
/// chain-splitting recurrence in `mtree` for the paragon model at any size.
#[test]
fn predictors_cross_check() {
    let params = SimConfig::paragon_like().to_comm_params(16.0);
    for bytes in [64u64, 4096] {
        let (h, e) = params.pair(bytes);
        for k in [1usize, 2, 5, 16, 33] {
            assert_eq!(
                predict::binomial_tree_latency(&params, bytes, k),
                mtree::SplitStrategy::Binomial.latency(h, e, k)
            );
            assert_eq!(
                predict::sequential_tree_latency(&params, bytes, k),
                mtree::SplitStrategy::Sequential.latency(h, e, k)
            );
        }
    }
}
