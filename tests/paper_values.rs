//! Pinned values from the paper's text, reproduced end-to-end through the
//! public API.

use mtree::opt::{opt_latency, opt_table};
use mtree::Schedule;
use optmc::Algorithm;
use topo::{Bmin, Mesh, NodeId, Topology, UpPolicy};

/// §3/Fig. 1: on a 6×6 mesh with `t_hold = 20`, `t_end = 55` and 7
/// destinations, "the multicast latency of the OPT-mesh tree is 130" and
/// "the multicast latency of the U-mesh tree is 165".
#[test]
fn fig1_values_reproduce() {
    let mesh = Mesh::new(&[6, 6]);
    let parts: Vec<NodeId> = [1u32, 4, 9, 13, 19, 25, 28, 33].map(NodeId).to_vec();
    for src in &parts {
        let chain = Algorithm::OptArch.chain(&mesh, &parts, *src);
        let opt = Schedule::build(
            8,
            chain.src_pos(),
            &Algorithm::OptArch.splits(20, 55, 8),
            20,
            55,
        );
        assert_eq!(opt.latency(), 130);
        let u = Schedule::build(
            8,
            chain.src_pos(),
            &Algorithm::UArch.splits(20, 55, 8),
            20,
            55,
        );
        assert_eq!(u.latency(), 165);
    }
}

/// The 35-unit gap of Fig. 1 is the whole point of the DP: same chain, same
/// network, different splits.
#[test]
fn fig1_gap_is_split_rule_only() {
    assert_eq!(opt_latency(20, 55, 8), 130);
    assert_eq!(165 - 130, 35);
}

/// §2.2: optimality assumes `t_hold`/`t_end` constant; with `t_hold == t_end`
/// the OPT tree *is* the binomial tree ("binomial trees are optimal only if
/// ... t_hold = t_end", §3).
#[test]
fn binomial_optimal_exactly_when_hold_equals_end() {
    for k in 2..=128usize {
        let t = opt_table(77, 77, k);
        let b = mtree::SplitStrategy::Binomial.latency(77, 77, k);
        assert_eq!(t.t(k), b, "k={k}");
    }
}

/// §5: "The mesh network is based on a 16x16 topology supporting XY routing
/// with one-port architecture.  The BMIN network has 128 nodes based on 2x2
/// bidirectional switches."
#[test]
fn evaluation_networks_match_paper() {
    let mesh = Mesh::new(&[16, 16]);
    assert_eq!(mesh.graph().n_nodes(), 256);
    // One-port: exactly one injection and one consumption channel per node.
    for n in 0..256u32 {
        let inj = mesh.graph().injection(NodeId(n));
        let con = mesh.graph().consumption(NodeId(n));
        assert_ne!(inj, con);
    }
    let bmin = Bmin::new(7, UpPolicy::Straight);
    assert_eq!(bmin.graph().n_nodes(), 128);
    assert_eq!(bmin.stages(), 7);
}

/// §1: the binomial tree "may be outperformed in some networks by ... a
/// sequential tree" — true under the parameterized model whenever t_hold is
/// small.
#[test]
fn sequential_beats_binomial_at_small_hold() {
    let seq = mtree::SplitStrategy::Sequential.latency(5, 300, 16);
    let bin = mtree::SplitStrategy::Binomial.latency(5, 300, 16);
    assert!(seq < bin, "{seq} vs {bin}");
}
