//! Umbrella crate for the IPPS'97 optimal-multicasting reproduction.
//!
//! Re-exports the workspace crates so examples and integration tests can use
//! a single dependency.  See `README.md` for the tour and `DESIGN.md` for the
//! system inventory.

#![forbid(unsafe_code)]

pub use flitsim;
pub use mtree;
pub use optmc;
pub use pcm;
pub use topo;
