#!/usr/bin/env bash
# Repo-wide hygiene gate: formatting, lints (warnings are errors), tests.
# Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test -q --workspace

# Static verification gate: the flagship schedules must certify deadlock-
# and contention-free (any error-level finding exits nonzero and fails the
# build via `set -e`).
echo "==> optmc check (OPT-mesh on mesh:16x16)"
cargo run --release -q -p optmc-cli --bin optmc -- \
    check --topo mesh:16x16 --alg opt-mesh --bytes 4096 --src 0

echo "==> optmc check (OPT-min on bmin:128)"
cargo run --release -q -p optmc-cli --bin optmc -- \
    check --topo bmin:128 --alg opt-min --bytes 4096 --src 0

# Campaign smoke: a 4-cell sweep must run clean, and an immediate resume
# must be a pure no-op (0 executed, 4 skipped) — the checkpoint contract.
echo "==> optmc sweep (4-cell smoke campaign + no-op resume)"
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
cat > "$SMOKE_DIR/smoke.json" <<'EOF'
{
    "name": "smoke",
    "topos": ["mesh:8x8"],
    "algorithms": ["u-arch", "opt-arch"],
    "ks": [8],
    "sizes": [512, 4096],
    "trials": 2
}
EOF
cargo run --release -q -p optmc-cli --bin optmc -- \
    sweep run --spec "$SMOKE_DIR/smoke.json" --jobs 2 --quiet \
    --out "$SMOKE_DIR/campaigns" \
    | grep -F "4 executed, 0 skipped, 0 failed" >/dev/null \
    || { echo "smoke campaign did not run all 4 cells" >&2; exit 1; }
cargo run --release -q -p optmc-cli --bin optmc -- \
    sweep resume --spec "$SMOKE_DIR/smoke.json" --quiet \
    --out "$SMOKE_DIR/campaigns" \
    | grep -F "0 executed, 4 skipped, 0 failed" >/dev/null \
    || { echo "smoke campaign resume re-ran completed cells" >&2; exit 1; }

# Telemetry determinism gate: two inspect runs of the same seed must emit
# byte-identical TelemetrySnapshot JSON (the snapshot holds cycle/event
# counts only, never wall-clock), and `sweep status` must read back the
# smoke campaign's heartbeat stream.
echo "==> telemetry snapshot is byte-identical across same-seed runs"
cargo run --release -q -p optmc-cli --bin optmc -- \
    inspect --topo mesh:16x16 --alg opt-arch --nodes 24 --bytes 4096 \
    --format text --heatmap --telemetry-out "$SMOKE_DIR/telem_a.json" >/dev/null
cargo run --release -q -p optmc-cli --bin optmc -- \
    inspect --topo mesh:16x16 --alg opt-arch --nodes 24 --bytes 4096 \
    --format text --heatmap --telemetry-out "$SMOKE_DIR/telem_b.json" >/dev/null
cmp "$SMOKE_DIR/telem_a.json" "$SMOKE_DIR/telem_b.json" \
    || { echo "telemetry snapshot is not deterministic for a fixed seed" >&2; exit 1; }

echo "==> sweep status reads the smoke campaign heartbeat"
cargo run --release -q -p optmc-cli --bin optmc -- \
    sweep status --spec "$SMOKE_DIR/smoke.json" --out "$SMOKE_DIR/campaigns" \
    | grep -F "progress       4/4 cells" >/dev/null \
    || { echo "sweep status did not report the finished smoke campaign" >&2; exit 1; }

# Hot-path allocation gate: the zero_alloc suite pins that steady-state
# event processing — including the counters-only observer and the telem
# counter flush — adds no per-event heap allocations.
echo "==> zero-allocation hot path (allocmeter, Null + counters observers)"
cargo test -q -p flitsim --test zero_alloc

# Perf + determinism smoke: re-run every workload recorded in the committed
# BENCH_sim.json (same runs, same seed).  The deterministic sentinels
# (events_scheduled, peak_heap_events, mean_latency, sim_cycles,
# shard_rounds) must match exactly — any drift means simulation results or
# the adaptive window schedule changed — and overall throughput must stay
# within 25% of the committed baseline.  The check also enforces the
# observer-overhead budget (counters sink within 5% of NullObserver) and
# the barrier-efficiency ceiling: every sharded record's rendezvous rounds
# per simulated cycle stays under the window-coalescing gate, with the
# (wall-clock, ungated) rendezvous stall fraction printed alongside.
echo "==> bench_sim --check BENCH_sim.json (sentinels exact, throughput >= 0.75x, counters obs >= 0.95x null, barrier efficiency)"
cargo run --release -q -p optmc-bench --bin bench_sim -- --check BENCH_sim.json

# Sharded-engine differential gate: one workload per topology family, run
# sequentially and under 4 shards; the canonical SimResult JSON must be
# byte-identical (the sharded engine's core contract).  `--fingerprint`
# with `--shards` fails by itself if the sharded engine silently fell back,
# so a vacuous pass is impossible.  The second leg repeats the comparison
# under the counters observer (`--counters`): counting observation must
# shard — per-shard tallies merge deterministically — and must not perturb
# the merged result.
echo "==> sharded engine differential (4 shards, fingerprints byte-identical per topology, plain + counters observer)"
for topo in mesh:16x16 torus:8x8 bmin:128 omega:64; do
    cargo run --release -q -p optmc-cli --bin optmc -- \
        run --topo "$topo" --alg opt-arch --nodes 12 --bytes 4096 --seed 1997 \
        --fingerprint > "$SMOKE_DIR/fp_seq.json"
    cargo run --release -q -p optmc-cli --bin optmc -- \
        run --topo "$topo" --alg opt-arch --nodes 12 --bytes 4096 --seed 1997 \
        --shards 4 --fingerprint > "$SMOKE_DIR/fp_sh4.json"
    cmp "$SMOKE_DIR/fp_seq.json" "$SMOKE_DIR/fp_sh4.json" \
        || { echo "sharded run diverged from sequential on $topo" >&2; exit 1; }
    cargo run --release -q -p optmc-cli --bin optmc -- \
        run --topo "$topo" --alg opt-arch --nodes 12 --bytes 4096 --seed 1997 \
        --counters --fingerprint > "$SMOKE_DIR/fp_seq_cnt.json"
    cargo run --release -q -p optmc-cli --bin optmc -- \
        run --topo "$topo" --alg opt-arch --nodes 12 --bytes 4096 --seed 1997 \
        --shards 4 --counters --fingerprint > "$SMOKE_DIR/fp_sh4_cnt.json"
    cmp "$SMOKE_DIR/fp_seq_cnt.json" "$SMOKE_DIR/fp_sh4_cnt.json" \
        || { echo "sharded counters-observed run diverged from sequential on $topo" >&2; exit 1; }
    echo "    $topo: identical (plain + counters)"
done

# Planning-service smoke: a scripted request batch served twice must answer
# byte-identically (replay determinism through the full stdin/stdout shell),
# with the repeats answered from the plan cache.
echo "==> optmc serve answers a scripted batch deterministically"
cat > "$SMOKE_DIR/serve_batch.jsonl" <<'EOF'
{"id": 1, "topo": "mesh:8x8", "k": 8, "seed": 1, "bytes": 2048}
{"id": 2, "topo": "mesh:8x8", "k": 8, "seed": 1, "bytes": 2048}
{"id": 3, "topo": "bmin:64", "alg": "u-arch", "k": 6, "seed": 2, "bytes": 1024}
{"id": 4, "topo": "mesh:8x8", "k": 8, "seed": 1, "bytes": 2048}
{"id": 5, "stats": true}
EOF
cargo run --release -q -p optmc-cli --bin optmc -- \
    serve --quiet --telemetry-out "$SMOKE_DIR/plansvc_telem.json" \
    < "$SMOKE_DIR/serve_batch.jsonl" > "$SMOKE_DIR/serve_a.jsonl"
cargo run --release -q -p optmc-cli --bin optmc -- \
    serve --quiet < "$SMOKE_DIR/serve_batch.jsonl" > "$SMOKE_DIR/serve_b.jsonl"
cmp "$SMOKE_DIR/serve_a.jsonl" "$SMOKE_DIR/serve_b.jsonl" \
    || { echo "optmc serve responses are not replay-deterministic" >&2; exit 1; }
grep -F '"hits":2' "$SMOKE_DIR/serve_a.jsonl" >/dev/null \
    || { echo "optmc serve did not answer the repeats from the plan cache" >&2; exit 1; }
test -s "$SMOKE_DIR/plansvc_telem.json" \
    || { echo "optmc serve --telemetry-out wrote nothing" >&2; exit 1; }

# Plan-path perf + determinism: re-run every workload in the committed
# BENCH_plan.json.  The sentinels (request/hit/miss/DP/eviction counts and
# the response-byte fingerprint) must match exactly; overall throughput must
# stay within 25% of the committed figure; and warm cache hits must stay at
# least 10x faster than cold misses.
echo "==> bench_plan --check BENCH_plan.json (sentinels exact, throughput >= 0.75x, hit speedup >= 10x)"
cargo run --release -q -p optmc-bench --bin bench_plan -- --check BENCH_plan.json

# Figure determinism gate: the committed paper figures must regenerate
# byte-identical from a clean build.
echo "==> figure regeneration is byte-identical (fig2, fig3)"
cargo run --release -q -p optmc-bench --bin fig2_mesh_msgsize >/dev/null
cargo run --release -q -p optmc-bench --bin fig3_mesh_nodes >/dev/null
git diff --exit-code -- \
    results/fig2.csv results/fig2.json results/fig3.csv results/fig3.json \
    || { echo "figure regeneration diverged from committed results/" >&2; exit 1; }

# ---------------------------------------------------------------------------
# verify stage: concurrency soundness (loom model checking, Miri) and
# schedule-set certification.  Each leg degrades with a clear message when
# its tool is unavailable rather than failing the gate.

# Loom model checking: the in-tree bounded-preemption explorer (shims/loom)
# drives the telem atomic registry and the campaign pool's two-lock
# checkpoint/heartbeat protocol through adversarial interleavings.  Built
# under --cfg loom in its own target dir so the cache never mixes with the
# normal build.
echo "==> verify: loom model checking (telem registry, campaign pool, shard window protocol)"
export CARGO_TARGET_DIR=target/loom RUSTFLAGS="--cfg loom"
cargo test -q -p loom                      # the explorer's own suite
cargo test -q -p telem --test loom         # counter/gauge registry atomics
cargo test -q -p campaign --test loom      # pool checkpoint/heartbeat protocol
cargo test -q -p flitsim --test loom       # sharded-engine window/handoff protocol
unset CARGO_TARGET_DIR RUSTFLAGS

# Miri: undefined-behaviour gate for allocmeter, the workspace's only
# unsafe crate (a counting global allocator).  Miri ships with nightly
# toolchains only; skip loudly when absent so offline/stable environments
# still pass.
echo "==> verify: cargo miri test -p allocmeter (UB gate for the one unsafe crate)"
if cargo miri --version >/dev/null 2>&1; then
    cargo miri test -q -p allocmeter
else
    echo "    miri unavailable on this toolchain — skipping (install with:"
    echo "    rustup +nightly component add miri). The allocmeter suite still"
    echo "    runs under the normal test gate above."
fi

# Schedule-set certification, end to end: a 16-multicast node-disjoint
# staggered workload must certify contention-free, emit a plan certificate,
# and the independent verifier plus the joint differential oracle must both
# agree (any error-level finding exits nonzero).
echo "==> verify: optmc check --set certifies a 16-multicast workload"
cargo run --release -q -p optmc-cli --bin optmc -- \
    check --topo mesh:16x16 --set --count 16 --nodes 8 --bytes 2048 \
    --gap 2000000 --disjoint --seed 1997 --cert-out "$SMOKE_DIR/plan_cert.json" \
    | grep -F "schedule set certified contention-free" >/dev/null \
    || { echo "16-multicast set failed certification" >&2; exit 1; }
test -s "$SMOKE_DIR/plan_cert.json" \
    || { echo "plan certificate was not written" >&2; exit 1; }

echo "All checks passed."
