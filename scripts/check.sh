#!/usr/bin/env bash
# Repo-wide hygiene gate: formatting, lints (warnings are errors), tests.
# Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test -q --workspace

# Static verification gate: the flagship schedules must certify deadlock-
# and contention-free (any error-level finding exits nonzero and fails the
# build via `set -e`).
echo "==> optmc check (OPT-mesh on mesh:16x16)"
cargo run --release -q -p optmc-cli --bin optmc -- \
    check --topo mesh:16x16 --alg opt-mesh --bytes 4096 --src 0

echo "==> optmc check (OPT-min on bmin:128)"
cargo run --release -q -p optmc-cli --bin optmc -- \
    check --topo bmin:128 --alg opt-min --bytes 4096 --src 0

# Campaign smoke: a 4-cell sweep must run clean, and an immediate resume
# must be a pure no-op (0 executed, 4 skipped) — the checkpoint contract.
echo "==> optmc sweep (4-cell smoke campaign + no-op resume)"
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
cat > "$SMOKE_DIR/smoke.json" <<'EOF'
{
    "name": "smoke",
    "topos": ["mesh:8x8"],
    "algorithms": ["u-arch", "opt-arch"],
    "ks": [8],
    "sizes": [512, 4096],
    "trials": 2
}
EOF
cargo run --release -q -p optmc-cli --bin optmc -- \
    sweep run --spec "$SMOKE_DIR/smoke.json" --jobs 2 --quiet \
    --out "$SMOKE_DIR/campaigns" \
    | grep -F "4 executed, 0 skipped, 0 failed" >/dev/null \
    || { echo "smoke campaign did not run all 4 cells" >&2; exit 1; }
cargo run --release -q -p optmc-cli --bin optmc -- \
    sweep resume --spec "$SMOKE_DIR/smoke.json" --quiet \
    --out "$SMOKE_DIR/campaigns" \
    | grep -F "0 executed, 4 skipped, 0 failed" >/dev/null \
    || { echo "smoke campaign resume re-ran completed cells" >&2; exit 1; }

echo "All checks passed."
