#!/usr/bin/env bash
# Repo-wide hygiene gate: formatting, lints (warnings are errors), tests.
# Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test -q --workspace

# Static verification gate: the flagship schedules must certify deadlock-
# and contention-free (any error-level finding exits nonzero and fails the
# build via `set -e`).
echo "==> optmc check (OPT-mesh on mesh:16x16)"
cargo run --release -q -p optmc-cli --bin optmc -- \
    check --topo mesh:16x16 --alg opt-mesh --bytes 4096 --src 0

echo "==> optmc check (OPT-min on bmin:128)"
cargo run --release -q -p optmc-cli --bin optmc -- \
    check --topo bmin:128 --alg opt-min --bytes 4096 --src 0

echo "All checks passed."
