//! Contention anatomy: open up one OPT-tree run and show *where* the
//! blocking happens — which sends collide on which channels, statically
//! predicted and dynamically observed — then show the OPT-mesh ordering
//! dissolving every collision.
//!
//! ```text
//! cargo run --release --example contention_anatomy
//! ```

use flitsim::SimConfig;
use mtree::Schedule;
use optmc::experiments::random_placement;
use optmc::{check_schedule, run_multicast, Algorithm};
use topo::Mesh;

fn main() {
    let mesh = Mesh::new(&[16, 16]);
    let cfg = SimConfig::paragon_like();

    // Find a placement where the unordered chain collides (most do).
    let (placement, seed) = (0..)
        .map(|s| (random_placement(256, 16, s), s))
        .find(|(p, _)| {
            let chain = Algorithm::OptTree.chain(&mesh, p, p[0]);
            let splits = Algorithm::OptTree.splits(20, 55, p.len());
            let sched = Schedule::build(p.len(), chain.src_pos(), &splits, 20, 55);
            !check_schedule(&mesh, &chain, &sched).is_empty()
        })
        .expect("some placement collides");
    println!(
        "Placement (seed {seed}): {:?}\n",
        placement.iter().map(|n| n.0).collect::<Vec<_>>()
    );

    let src = placement[0];
    for alg in [Algorithm::OptTree, Algorithm::OptArch] {
        let out = run_multicast(&mesh, &cfg, alg, &placement, src, 4096);
        let chain = alg.chain(&mesh, &placement, src);
        let conflicts = check_schedule(&mesh, &chain, &out.schedule);
        println!("{}:", alg.display_name(&mesh));
        println!("  static conflicts predicted: {}", conflicts.len());
        for c in conflicts.iter().take(5) {
            let a = &out.schedule.sends[c.send_a];
            let b = &out.schedule.sends[c.send_b];
            let coord = |pos: usize| {
                let xy = mesh.coords(out.chain_nodes[pos]);
                format!("({},{})", xy[0], xy[1])
            };
            println!(
                "    {}->{} [{} .. {}] collides with {}->{} [{} .. {}] on channel {}",
                coord(a.from),
                coord(a.to),
                a.start,
                a.arrive,
                coord(b.from),
                coord(b.to),
                b.start,
                b.arrive,
                c.channel.0
            );
        }
        println!(
            "  simulated: latency {} (bound {}), {} blocking episodes, {} blocked cycles\n",
            out.latency, out.analytic, out.sim.blocked_events, out.sim.blocked_cycles
        );
    }
}
