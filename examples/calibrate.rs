//! Calibration walkthrough: measure `t_hold(m)` and `t_end(m)` at "user
//! level" on the simulated machine — exactly the methodology the authors
//! prescribe for real hardware — fit the affine model, and feed the result
//! to the OPT-tree DP.  The measured model matches the closed-form one, so
//! trees built from measurements are the same trees the oracle would build.
//!
//! ```text
//! cargo run --release --example calibrate
//! ```

use flitsim::SimConfig;
use mtree::SplitStrategy;
use optmc::measure;
use pcm::calibrate::{r_squared, Sample};
use topo::{Mesh, NodeId, Topology};

fn main() {
    let mesh = Mesh::new(&[16, 16]);
    let cfg = SimConfig::paragon_like();
    let (src, dst) = (NodeId(0), NodeId(136)); // 16 hops apart
    let sizes: Vec<u64> = vec![64, 256, 1024, 4096, 16384, 65536];

    println!("Measuring on the simulated machine ({}):", mesh.name());
    println!("{:>10} {:>12} {:>12}", "bytes", "t_hold", "t_end");
    let mut hold_samples = Vec::new();
    let mut end_samples = Vec::new();
    for &m in &sizes {
        let h = measure::measure_t_hold(&mesh, &cfg, src, dst, m, 8);
        let e = measure::measure_t_end(&mesh, &cfg, src, dst, m);
        println!("{m:>10} {h:>12} {e:>12}");
        hold_samples.push(Sample::new(m, h));
        end_samples.push(Sample::new(m, e));
    }

    let (hold_fn, end_fn) = measure::calibrate(&mesh, &cfg, src, dst, &sizes);
    println!("\nFitted model:");
    println!(
        "  t_hold(m) = {hold_fn}   (R² = {:.6})",
        r_squared(&hold_fn, &hold_samples)
    );
    println!(
        "  t_end(m)  = {end_fn}   (R² = {:.6})",
        r_squared(&end_fn, &end_samples)
    );

    // Use the fitted functions the way a library would: build optimal
    // multicast trees for a few message sizes.
    println!("\nOptimal 32-node multicast trees from the fitted model:");
    println!(
        "{:>10} {:>8} {:>8} {:>12} {:>12}",
        "bytes", "t_hold", "t_end", "opt t[32]", "binomial"
    );
    for &m in &sizes {
        let (h, e) = (hold_fn.eval(m), end_fn.eval(m));
        let opt = SplitStrategy::opt(h, e, 32).latency(h, e, 32);
        let bin = SplitStrategy::Binomial.latency(h, e, 32);
        println!("{m:>10} {h:>8} {e:>8} {opt:>12} {bin:>12}");
    }
}
