//! BMIN deep-dive: OPT-min on the 128-node bidirectional MIN, the role of
//! the adaptive turnaround up-phase, and the §5 observation that extra paths
//! soften OPT-tree's contention relative to the mesh.
//!
//! ```text
//! cargo run --release --example bmin_multicast
//! ```

use flitsim::SimConfig;
use optmc::experiments::run_trials;
use optmc::Algorithm;
use topo::{Bmin, Mesh, Topology, UpPolicy};

fn main() {
    let bmin = Bmin::new(7, UpPolicy::Straight);
    println!(
        "Network: {} — {} switches in {} stages, turnaround routing\n",
        bmin.name(),
        bmin.graph().n_routers(),
        bmin.stages()
    );

    let cfg = SimConfig::paragon_like();
    println!("32-node, 4 KiB multicasts (8 random placements):");
    for alg in Algorithm::PAPER_SET {
        let s = run_trials(&bmin, &cfg, alg, 32, 4096, 8, 2024);
        println!(
            "  {:10}  mean {:8.1}  blocked/run {:7.1}  contention-free {:.0}%",
            alg.display_name(&bmin),
            s.mean_latency,
            s.mean_blocked,
            100.0 * s.contention_free_fraction
        );
    }

    // The §5 cross-architecture comparison: OPT-tree suffers *less* on the
    // BMIN than on the mesh because turnaround routing offers multiple
    // up-paths where XY offers exactly one.
    let mesh = Mesh::new(&[16, 16]);
    let mesh_tree = run_trials(&mesh, &cfg, Algorithm::OptTree, 32, 4096, 8, 2024);
    let bmin_tree = run_trials(&bmin, &cfg, Algorithm::OptTree, 32, 4096, 8, 2024);
    println!(
        "\nOPT-tree contention overhead: mesh {:.1} vs BMIN {:.1} blocked cycles/run",
        mesh_tree.mean_blocked, bmin_tree.mean_blocked
    );

    // Ablate the adaptivity: force the deterministic up-phase only.
    let mut rigid = cfg.clone();
    rigid.adaptive = false;
    let ada = run_trials(&bmin, &cfg, Algorithm::OptTree, 32, 4096, 8, 99);
    let det = run_trials(&bmin, &rigid, Algorithm::OptTree, 32, 4096, 8, 99);
    println!(
        "OPT-tree on BMIN, blocked cycles/run: adaptive up-phase {:.1} vs deterministic {:.1}",
        ada.mean_blocked, det.mean_blocked
    );
}
