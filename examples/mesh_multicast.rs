//! Mesh deep-dive: reproduce the paper's Fig. 1 worked example, show the
//! tree, then scale the same comparison up to the 16×16 evaluation network.
//!
//! ```text
//! cargo run --release --example mesh_multicast
//! ```

use flitsim::SimConfig;
use mtree::{dot, MulticastTree, Schedule};
use optmc::experiments::{random_placement, run_trials};
use optmc::Algorithm;
use topo::{Mesh, NodeId};

fn main() {
    // --- Part 1: the worked example (Fig. 1). --------------------------
    let mesh6 = Mesh::new(&[6, 6]);
    let (hold, end) = (20u64, 55u64);
    let parts: Vec<NodeId> = [1u32, 4, 9, 13, 19, 25, 28, 33].map(NodeId).to_vec();
    let chain = Algorithm::OptArch.chain(&mesh6, &parts, parts[0]);
    let splits = Algorithm::OptArch.splits(hold, end, 8);
    let sched = Schedule::build(8, chain.src_pos(), &splits, hold, end);
    println!("Fig. 1 example — OPT-mesh on a 6x6 mesh (t_hold=20, t_end=55)");
    println!("  multicast latency: {} (paper: 130)", sched.latency());
    let umesh = Schedule::build(
        8,
        chain.src_pos(),
        &Algorithm::UArch.splits(hold, end, 8),
        hold,
        end,
    );
    println!("  U-mesh latency:    {} (paper: 165)\n", umesh.latency());

    let tree = MulticastTree::from_schedule(&sched);
    let labels: Vec<String> = chain
        .nodes()
        .iter()
        .map(|&n| {
            let c = mesh6.coords(n);
            format!("({},{})", c[0], c[1])
        })
        .collect();
    println!("OPT-mesh tree:\n{}", dot::to_dot(&tree, Some(&labels)));

    // --- Part 2: the 16×16 evaluation network. --------------------------
    let mesh = Mesh::new(&[16, 16]);
    let cfg = SimConfig::paragon_like();
    println!("32-node, 4 KiB multicasts on a 16x16 mesh (8 random placements):");
    for alg in Algorithm::PAPER_SET {
        let s = run_trials(&mesh, &cfg, alg, 32, 4096, 8, 2024);
        println!(
            "  {:10}  mean {:8.1}  [{} .. {}]  blocked/run {:7.1}  contention-free {:.0}%",
            alg.display_name(&mesh),
            s.mean_latency,
            s.min_latency,
            s.max_latency,
            s.mean_blocked,
            100.0 * s.contention_free_fraction
        );
    }

    // --- Part 3: where does OPT-tree's loss come from? ------------------
    // Same placement, same tree shape — only the node ordering differs.
    let placement = random_placement(256, 32, 5);
    let src = placement[0];
    let opt_mesh = optmc::run_multicast(&mesh, &cfg, Algorithm::OptArch, &placement, src, 4096);
    let opt_tree = optmc::run_multicast(&mesh, &cfg, Algorithm::OptTree, &placement, src, 4096);
    println!(
        "\nSame placement, same splits: OPT-mesh {} vs OPT-tree {} cycles \
         ({} blocked) — ordering is the whole difference.",
        opt_mesh.latency, opt_tree.latency, opt_tree.sim.blocked_cycles
    );
}
