//! Quickstart: build an optimal multicast tree for a measured machine and
//! run it, contention-free, on the flit-level simulator.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use flitsim::SimConfig;
use optmc::{run_multicast, Algorithm};
use topo::{Mesh, NodeId};

fn main() {
    // 1. A network: the paper's 16×16 wormhole mesh with XY routing.
    let mesh = Mesh::new(&[16, 16]);

    // 2. A machine model: flit width, router delay, software overheads.
    let cfg = SimConfig::paragon_like();

    // 3. Who participates: a source and 15 destinations.
    let participants: Vec<NodeId> = [
        0u32, 17, 34, 51, 68, 85, 102, 119, 136, 153, 170, 187, 204, 221, 238, 255,
    ]
    .map(NodeId)
    .to_vec();
    let source = participants[0];

    // 4. Run the paper's three algorithms on the same placement.
    println!("16-node multicast of a 4 KiB message on a 16x16 mesh:\n");
    for alg in Algorithm::PAPER_SET {
        let out = run_multicast(&mesh, &cfg, alg, &participants, source, 4096);
        println!(
            "  {:10}  latency {:6} cycles   model bound {:6}   blocked {:5} cycles",
            alg.display_name(&mesh),
            out.latency,
            out.analytic,
            out.sim.blocked_cycles
        );
    }

    // 5. The headline: OPT-mesh hits its model bound because its node
    //    ordering keeps concurrent worms on disjoint channels.
    let out = run_multicast(&mesh, &cfg, Algorithm::OptArch, &participants, source, 4096);
    assert!(out.sim.contention_free());
    println!(
        "\nOPT-mesh ran contention-free: {} messages, 0 blocked cycles.",
        out.sim.messages.len()
    );
}
