//! Beyond the paper: the extension APIs in one tour — gather (the dual
//! collective), concurrent multicast batches, and §6 temporal ordering on
//! networks where no node order is contention-free.
//!
//! ```text
//! cargo run --release --example collectives
//! ```

use flitsim::SimConfig;
use optmc::concurrent::{run_concurrent, McastSpec};
use optmc::experiments::random_placement;
use optmc::gather::run_gather;
use optmc::{run_multicast, run_multicast_with, Algorithm};
use topo::{Mesh, Omega, Torus};

fn main() {
    let cfg = SimConfig::paragon_like();

    // --- Gather: same tree, opposite direction. -------------------------
    let mesh = Mesh::new(&[16, 16]);
    let parts = random_placement(256, 24, 7);
    let g = run_gather(&mesh, &cfg, Algorithm::OptArch, &parts, parts[0], 4096);
    let m = run_multicast(&mesh, &cfg, Algorithm::OptArch, &parts, parts[0], 4096);
    println!("gather vs multicast over one OPT-mesh tree (24 nodes, 4 KiB):");
    println!("  multicast {:>7} cycles (bound {})", m.latency, m.analytic);
    println!(
        "  gather    {:>7} cycles — above the mirrored bound: receives gate on t_recv > t_hold\n",
        g.latency
    );

    // --- Concurrent multicasts: per-multicast guarantees, joint traffic. --
    let pool = random_placement(256, 16 * 4, 21);
    let specs: Vec<McastSpec> = pool
        .chunks(16)
        .map(|c| McastSpec {
            participants: c.to_vec(),
            src: c[0],
            bytes: 4096,
            start: 0,
        })
        .collect();
    let (outs, sim) = run_concurrent(&mesh, &cfg, Algorithm::OptArch, &specs);
    println!("four concurrent 16-node OPT-mesh multicasts:");
    for (i, o) in outs.iter().enumerate() {
        println!(
            "  multicast {i}: latency {:>6} (solo bound {})",
            o.latency, o.analytic
        );
    }
    println!(
        "  joint blocking {} cycles — each tree is contention-free alone, \
         nothing coordinates them\n",
        sim.blocked_cycles
    );

    // --- Temporal ordering where ordering alone cannot win. --------------
    let omega = Omega::new(7);
    let parts = random_placement(128, 32, 3);
    let plain = run_multicast(&omega, &cfg, Algorithm::OptArch, &parts, parts[0], 16384);
    let temporal = run_multicast_with(
        &omega,
        &cfg,
        Algorithm::OptArch,
        &parts,
        parts[0],
        16384,
        true,
    );
    println!("omega-128 (no contention-free partition exists, paper §6):");
    println!(
        "  ordered chain          latency {:>6}, blocked {:>5} cycles",
        plain.latency, plain.sim.blocked_cycles
    );
    println!(
        "  ordered + temporal     latency {:>6}, blocked {:>5} cycles",
        temporal.latency, temporal.sim.blocked_cycles
    );

    let torus = Torus::new(&[16, 16]);
    let plain = run_multicast(&torus, &cfg, Algorithm::OptArch, &parts, parts[0], 16384);
    let temporal = run_multicast_with(
        &torus,
        &cfg,
        Algorithm::OptArch,
        &parts,
        parts[0],
        16384,
        true,
    );
    println!("torus-16x16 (wrap paths escape Theorem 1's geometry):");
    println!(
        "  ordered chain          latency {:>6}, blocked {:>5} cycles",
        plain.latency, plain.sim.blocked_cycles
    );
    println!(
        "  ordered + temporal     latency {:>6}, blocked {:>5} cycles",
        temporal.latency, temporal.sim.blocked_cycles
    );
}
