//! Offline shim for `proptest`.
//!
//! Supports the subset of the proptest API this workspace's property tests
//! use: the [`proptest!`] macro (with an optional
//! `#![proptest_config(ProptestConfig::with_cases(n))]` header), integer
//! range strategies, `any::<T>()`, tuple strategies, `collection::vec`,
//! `Just`, `.prop_map`, and the `prop_assert!`/`prop_assert_eq!`/
//! `prop_assume!` macros.
//!
//! Differences from upstream: cases are generated from a fixed per-test
//! seed (derived from the test name) so runs are deterministic, there is no
//! shrinking on failure (the failing values are printed by the assertion
//! itself), and `prop_assume!` rejections consume a case rather than being
//! retried.  `prop_assume!` must appear at the top level of the test body
//! (it expands to `continue` on the case loop).

#![forbid(unsafe_code)]

use std::ops::Range;

/// Per-test configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The deterministic generator driving the case loop (xorshift64*).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded from the test's name, so every `cargo test` run
    /// sees the same cases.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h.max(1) }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// A value generator.  Unlike upstream proptest there is no shrink tree —
/// `generate` directly yields a value.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// One generated value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A constant strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy over an empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + off) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy over an empty range");
                // 53 random bits → uniform in [0, 1), scaled to the range.
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                let v = self.start as f64 + unit * (self.end as f64 - self.start as f64);
                (v as $t).clamp(self.start, self.end)
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($t:ident),+))+) => {$(
        #[allow(non_snake_case)]
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($t,)+) = self;
                ($($t.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Types with a default "any value" strategy.
pub trait Arbitrary: Sized {
    /// One arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — an arbitrary value of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// A `Vec` of `element`-generated values with a length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::{
        any, collection, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest,
        Arbitrary, Just, ProptestConfig, Strategy, TestRng,
    };
}

/// Assert inside a property test (panics with the generated case visible in
/// the assertion message — no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// `assert_eq!` inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// `assert_ne!` inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Skip the current case when a precondition does not hold.  Must appear at
/// the top level of the test body (it continues the case loop).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// The test-defining macro.  Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr);
     $($(#[$meta:meta])*
       fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__cfg.cases {
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic("ranges");
        for _ in 0..500 {
            let v = (3u32..17).generate(&mut rng);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn vec_lengths_respect_range() {
        let mut rng = TestRng::deterministic("vec");
        let s = collection::vec(0u64..10, 2..5);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = TestRng::deterministic("map");
        let s = (1u32..5).prop_map(|x| x * 100);
        for _ in 0..20 {
            let v = s.generate(&mut rng);
            assert!(v % 100 == 0 && (100..500).contains(&v));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: strategies feed patterns, assume filters.
        #[test]
        fn macro_end_to_end(a in 0u64..100, b in any::<u32>(), v in collection::vec(0usize..7, 1..4)) {
            prop_assume!(a != 13);
            prop_assert!(a < 100);
            prop_assert_eq!(v.len(), v.len(), "b was {}", b);
            prop_assert_ne!(a, 13);
        }
    }
}
