//! # `loom` (offline shim) — bounded-preemption concurrency model checking
//!
//! The real [loom](https://docs.rs/loom) exhaustively enumerates the
//! interleavings of a test body under C11 semantics.  This workspace builds
//! fully offline, so this shim provides the same *surface* — `loom::model`,
//! `loom::thread`, `loom::sync::atomic`, `loom::sync::Mutex` — over a
//! different engine: every execution is fully serialized (exactly one
//! model thread runs at a time), every instrumented operation is a
//! schedule point, and the checker explores many seeded schedules with a
//! bounded number of forced preemptions per execution (the PCT strategy of
//! Burckhardt et al., *A Randomized Scheduler with Probabilistic
//! Guarantees of Finding Bugs*).
//!
//! Fidelity notes, honestly stated:
//!
//! * **Coverage is probabilistic, not exhaustive.**  A failing schedule is
//!   a real counterexample (executions are sequentially consistent
//!   interleavings of the instrumented operations, which every hardware
//!   memory model admits); a passing run is strong evidence, not proof.
//! * **Weak-memory reorderings are not modeled.**  `Relaxed` and `SeqCst`
//!   explore the same schedules.  For the invariants this workspace checks
//!   (atomic counter totals, lock-protected state machines) interleaving
//!   bugs — lost updates, broken protocol invariants, deadlocks — are the
//!   failure class that matters, and those are interleaving-visible.
//! * **Determinism.**  The schedule stream is seeded (`LOOM_SEED`), so a
//!   failure reproduces by rerunning with the printed seed.
//!
//! Knobs (environment variables, read once per [`model`] call):
//!
//! * `LOOM_MAX_ITER` — schedules to explore per model (default 96; the
//!   first is always the preemption-free baseline).
//! * `LOOM_MAX_PREEMPTIONS` — forced preemptions per schedule (default 3).
//! * `LOOM_SEED` — base seed for the schedule stream (default
//!   `0x6c6f6f6d`).

#![forbid(unsafe_code)]

pub(crate) mod sched;
pub mod sync;
pub mod thread;

pub use sched::model;
