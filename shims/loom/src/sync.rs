//! Instrumented synchronization primitives: every operation is a schedule
//! point for the explorer in [`crate::sched`].
//!
//! The atomic wrappers stay `const`-constructible (unlike real loom's), so
//! `static` metric cells declared through `telem`'s macros keep compiling
//! under `--cfg loom` — the shim instruments the *operations*, not the
//! storage.

use std::sync::TryLockError;

pub use std::sync::Arc;

pub mod atomic {
    //! Schedule-point-instrumented atomics (sequentially consistent
    //! interleaving model; orderings are accepted and passed through).

    pub use std::sync::atomic::Ordering;

    macro_rules! atomic_int {
        ($(#[$doc:meta])* $name:ident, $std:ty, $prim:ty) => {
            $(#[$doc])*
            #[derive(Debug, Default)]
            pub struct $name(pub(crate) $std);

            impl $name {
                /// A new cell holding `v`.
                pub const fn new(v: $prim) -> Self {
                    Self(<$std>::new(v))
                }

                /// Instrumented load.
                pub fn load(&self, order: Ordering) -> $prim {
                    crate::sched::checkpoint();
                    self.0.load(order)
                }

                /// Instrumented store.
                pub fn store(&self, v: $prim, order: Ordering) {
                    crate::sched::checkpoint();
                    self.0.store(v, order);
                }

                /// Instrumented swap.
                pub fn swap(&self, v: $prim, order: Ordering) -> $prim {
                    crate::sched::checkpoint();
                    self.0.swap(v, order)
                }

                /// Instrumented atomic add, returning the prior value.
                pub fn fetch_add(&self, v: $prim, order: Ordering) -> $prim {
                    crate::sched::checkpoint();
                    self.0.fetch_add(v, order)
                }

                /// Instrumented atomic subtract, returning the prior value.
                pub fn fetch_sub(&self, v: $prim, order: Ordering) -> $prim {
                    crate::sched::checkpoint();
                    self.0.fetch_sub(v, order)
                }

                /// Instrumented atomic max, returning the prior value.
                pub fn fetch_max(&self, v: $prim, order: Ordering) -> $prim {
                    crate::sched::checkpoint();
                    self.0.fetch_max(v, order)
                }

                /// Instrumented compare-exchange.
                pub fn compare_exchange(
                    &self,
                    current: $prim,
                    new: $prim,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$prim, $prim> {
                    crate::sched::checkpoint();
                    self.0.compare_exchange(current, new, success, failure)
                }

                /// Instrumented weak compare-exchange (never spuriously
                /// fails in this shim).
                pub fn compare_exchange_weak(
                    &self,
                    current: $prim,
                    new: $prim,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$prim, $prim> {
                    self.compare_exchange(current, new, success, failure)
                }
            }
        };
    }

    atomic_int!(
        /// Instrumented [`std::sync::atomic::AtomicU64`].
        AtomicU64,
        std::sync::atomic::AtomicU64,
        u64
    );
    atomic_int!(
        /// Instrumented [`std::sync::atomic::AtomicU32`].
        AtomicU32,
        std::sync::atomic::AtomicU32,
        u32
    );
    atomic_int!(
        /// Instrumented [`std::sync::atomic::AtomicUsize`].
        AtomicUsize,
        std::sync::atomic::AtomicUsize,
        usize
    );

    /// Instrumented [`std::sync::atomic::AtomicBool`].
    #[derive(Debug, Default)]
    pub struct AtomicBool(std::sync::atomic::AtomicBool);

    impl AtomicBool {
        /// A new cell holding `v`.
        pub const fn new(v: bool) -> Self {
            Self(std::sync::atomic::AtomicBool::new(v))
        }

        /// Instrumented load.
        pub fn load(&self, order: Ordering) -> bool {
            crate::sched::checkpoint();
            self.0.load(order)
        }

        /// Instrumented store.
        pub fn store(&self, v: bool, order: Ordering) {
            crate::sched::checkpoint();
            self.0.store(v, order);
        }

        /// Instrumented swap.
        pub fn swap(&self, v: bool, order: Ordering) -> bool {
            crate::sched::checkpoint();
            self.0.swap(v, order)
        }

        /// Instrumented compare-exchange.
        pub fn compare_exchange(
            &self,
            current: bool,
            new: bool,
            success: Ordering,
            failure: Ordering,
        ) -> Result<bool, bool> {
            crate::sched::checkpoint();
            self.0.compare_exchange(current, new, success, failure)
        }
    }
}

/// An instrumented mutex: acquisition and release are schedule points, and
/// contention hands control to a peer instead of blocking the OS thread
/// (the scheduler runs one thread at a time, so a real block would hang).
///
/// Poisoning is transparently swallowed — a panicking model execution is
/// aborted wholesale by the explorer, so poison carries no extra signal.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`]; release is a schedule point.
#[derive(Debug)]
pub struct MutexGuard<'a, T>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// A new mutex holding `t`.
    pub const fn new(t: T) -> Self {
        Self(std::sync::Mutex::new(t))
    }

    /// Acquire the lock, handing control to peers while contended.
    /// Mirrors `std`'s signature; the result is always `Ok`.
    pub fn lock(&self) -> Result<MutexGuard<'_, T>, std::convert::Infallible> {
        crate::sched::checkpoint();
        let mut spins = 0u32;
        loop {
            match self.0.try_lock() {
                Ok(g) => return Ok(MutexGuard(Some(g))),
                Err(TryLockError::Poisoned(p)) => return Ok(MutexGuard(Some(p.into_inner()))),
                Err(TryLockError::WouldBlock) => {
                    // Each retry hands control to a peer, so a holder gets
                    // to release within a handful of handoffs; thousands of
                    // fruitless handoffs mean a cyclic wait (the peers are
                    // themselves spinning on locks this thread holds).
                    spins += 1;
                    assert!(spins < 5_000, "loom shim: deadlock suspected (mutex cycle)");
                    crate::sched::blocked("mutex");
                }
            }
        }
    }

    /// Consume the mutex, returning its value.
    pub fn into_inner(self) -> Result<T, std::convert::Infallible> {
        Ok(self
            .0
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner))
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.0.as_deref().expect("guard live until drop")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_deref_mut().expect("guard live until drop")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release first, then mark the schedule point so a peer can win
        // the lock before this thread's next operation.
        self.0.take();
        crate::sched::checkpoint();
    }
}
