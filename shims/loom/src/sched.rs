//! The serialized schedule explorer behind [`model`].
//!
//! One execution = one seeded schedule.  All model threads are real OS
//! threads, but a scheduler mutex admits exactly one at a time; the others
//! park on a condvar.  Each instrumented operation (atomic access, mutex
//! acquire/release) is a *schedule point*: the running thread bumps an
//! operation counter and, if the counter hits one of the execution's
//! pre-drawn preemption points, control is handed to a uniformly chosen
//! runnable peer.  Blocking operations (mutex contention, `join`,
//! `yield_now` — loom's contract for the latter is "this thread cannot
//! progress until a peer runs", which spin-wait loops rely on) always hand
//! control away and are not charged against the preemption budget.

use std::cell::RefCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// SplitMix64 — the workspace's stock deterministic generator.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    /// Eligible to be scheduled.
    Ready,
    /// Waiting for the thread with the given id to finish.
    JoinWait(usize),
    /// Ran to completion (or unwound).
    Finished,
}

struct State {
    status: Vec<Status>,
    /// Index of the one thread allowed to run; meaningless under free-run.
    active: usize,
    /// Set on panic or suspected deadlock: serialization is abandoned and
    /// every thread runs to completion unsupervised so the process can
    /// surface the failure instead of hanging.
    free_run: bool,
    rng: u64,
    /// Schedule points consumed so far this execution.
    ops: u64,
    /// Remaining preemption points (ascending operation indices).
    preempt_at: Vec<u64>,
    next_preempt: usize,
    /// First panic payload observed in any model thread.
    panic_payload: Option<Box<dyn std::any::Any + Send>>,
}

pub(crate) struct Scheduler {
    state: Mutex<State>,
    cv: Condvar,
}

impl Scheduler {
    fn new(seed: u64, preemptions: u64, horizon: u64) -> Self {
        let mut rng = seed;
        let mut preempt_at: Vec<u64> = (0..preemptions)
            .map(|_| 1 + splitmix(&mut rng) % horizon.max(1))
            .collect();
        preempt_at.sort_unstable();
        preempt_at.dedup();
        Scheduler {
            state: Mutex::new(State {
                status: Vec::new(),
                active: 0,
                free_run: false,
                rng,
                ops: 0,
                preempt_at,
                next_preempt: 0,
                panic_payload: None,
            }),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, State> {
        // The state mutex is only ever poisoned if our own code panicked
        // while holding it; recover so sibling threads can still drain.
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Register a new model thread; returns its id.
    pub(crate) fn register(&self) -> usize {
        let mut st = self.lock();
        st.status.push(Status::Ready);
        st.status.len() - 1
    }

    /// Runnable peers of `me` (promoting satisfied join-waiters).
    fn candidates(st: &State, me: usize) -> Vec<usize> {
        st.status
            .iter()
            .enumerate()
            .filter(|&(id, s)| {
                id != me
                    && match *s {
                        Status::Ready => true,
                        Status::JoinWait(t) => st.status[t] == Status::Finished,
                        Status::Finished => false,
                    }
            })
            .map(|(id, _)| id)
            .collect()
    }

    fn hand_to(&self, st: &mut State, next: usize) {
        if let Status::JoinWait(_) = st.status[next] {
            st.status[next] = Status::Ready;
        }
        st.active = next;
        self.cv.notify_all();
    }

    fn park_until_active<'a>(
        &'a self,
        mut st: MutexGuard<'a, State>,
        me: usize,
    ) -> MutexGuard<'a, State> {
        while !st.free_run && st.active != me {
            st = self
                .cv
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        st
    }

    /// An unforced schedule point: switch only when this operation index
    /// was pre-drawn as a preemption point.
    pub(crate) fn checkpoint(&self, me: usize) {
        let mut st = self.lock();
        if st.free_run {
            return;
        }
        st.ops += 1;
        let due = st.next_preempt < st.preempt_at.len() && st.preempt_at[st.next_preempt] <= st.ops;
        if !due {
            return;
        }
        st.next_preempt += 1;
        let cands = Self::candidates(&st, me);
        if cands.is_empty() {
            return;
        }
        let pick = cands[(splitmix(&mut st.rng) % cands.len() as u64) as usize];
        self.hand_to(&mut st, pick);
        drop(self.park_until_active(st, me));
    }

    /// A cooperative yield (`thread::yield_now`): hand control to a
    /// runnable peer whenever one exists.  Spin-wait loops (barriers)
    /// depend on the handoff being unconditional — under the bounded
    /// preemption budget alone a spinner would never let its peer arrive —
    /// so unlike [`Self::checkpoint`] this is not charged to the budget,
    /// and unlike [`Self::blocked`] an empty peer set is not treated as a
    /// deadlock (the spinner's own iteration bound is the detector).
    pub(crate) fn yielded(&self, me: usize) {
        let mut st = self.lock();
        if st.free_run {
            drop(st);
            std::thread::yield_now();
            return;
        }
        st.ops += 1;
        let cands = Self::candidates(&st, me);
        if cands.is_empty() {
            return;
        }
        let pick = cands[(splitmix(&mut st.rng) % cands.len() as u64) as usize];
        self.hand_to(&mut st, pick);
        drop(self.park_until_active(st, me));
    }

    /// A forced schedule point: `me` cannot progress until some peer runs
    /// (contended mutex).  Not charged to the preemption budget.
    pub(crate) fn blocked(&self, me: usize, why: &str) {
        let mut st = self.lock();
        if st.free_run {
            drop(st);
            std::thread::yield_now();
            return;
        }
        st.ops += 1;
        let cands = Self::candidates(&st, me);
        if cands.is_empty() {
            st.free_run = true;
            self.cv.notify_all();
            drop(st);
            panic!("loom shim: deadlock suspected ({why}): no runnable peer thread");
        }
        let pick = cands[(splitmix(&mut st.rng) % cands.len() as u64) as usize];
        self.hand_to(&mut st, pick);
        drop(self.park_until_active(st, me));
    }

    /// Park `me` until thread `target` finishes.
    pub(crate) fn join_wait(&self, me: usize, target: usize) {
        let mut st = self.lock();
        if st.free_run || st.status[target] == Status::Finished {
            return;
        }
        st.status[me] = Status::JoinWait(target);
        let cands = Self::candidates(&st, me);
        if cands.is_empty() {
            st.free_run = true;
            self.cv.notify_all();
            drop(st);
            panic!("loom shim: deadlock suspected (join): no runnable peer thread");
        }
        let pick = cands[(splitmix(&mut st.rng) % cands.len() as u64) as usize];
        self.hand_to(&mut st, pick);
        let mut st = self.park_until_active(st, me);
        if !st.free_run {
            st.status[me] = Status::Ready;
        }
    }

    /// Mark `me` finished and hand control to a runnable peer, if any.
    pub(crate) fn finish(&self, me: usize) {
        let mut st = self.lock();
        st.status[me] = Status::Finished;
        if !st.free_run {
            let cands = Self::candidates(&st, me);
            if !cands.is_empty() {
                let pick = cands[(splitmix(&mut st.rng) % cands.len() as u64) as usize];
                self.hand_to(&mut st, pick);
                return;
            }
            if !st.status.iter().all(|&s| s == Status::Finished) {
                // Peers exist but none can run: unsupervise them so the
                // failure surfaces as a panic rather than a hang.
                st.free_run = true;
                if st.panic_payload.is_none() {
                    st.panic_payload = Some(Box::new(
                        "loom shim: threads left unrunnable at finish".to_string(),
                    ));
                }
            }
        }
        self.cv.notify_all();
    }

    /// A freshly spawned thread parks here until first scheduled.
    pub(crate) fn wait_first_turn(&self, me: usize) {
        drop(self.park_until_active(self.lock(), me));
    }

    /// Record the first panic and release every thread from serialization.
    pub(crate) fn record_panic(&self, payload: Box<dyn std::any::Any + Send>) {
        let mut st = self.lock();
        if st.panic_payload.is_none() {
            st.panic_payload = Some(payload);
        }
        st.free_run = true;
        self.cv.notify_all();
    }

    fn wait_all_finished(&self) {
        let mut st = self.lock();
        while !st.status.iter().all(|&s| s == Status::Finished) {
            st = self
                .cv
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
}

// ---------------------------------------------------------------------------
// Thread-local model context.

thread_local! {
    static CTX: RefCell<Option<(Arc<Scheduler>, usize)>> = const { RefCell::new(None) };
}

pub(crate) fn set_ctx(sched: Arc<Scheduler>, id: usize) {
    CTX.with(|c| *c.borrow_mut() = Some((sched, id)));
}

/// The calling thread's scheduler handle, if it is a model thread.
pub(crate) fn current() -> Option<(Arc<Scheduler>, usize)> {
    CTX.with(|c| c.borrow().clone())
}

/// Unforced schedule point; no-op outside a model execution.
pub(crate) fn checkpoint() {
    if let Some((sched, id)) = current() {
        sched.checkpoint(id);
    }
}

/// Forced schedule point; cooperative yield outside a model execution.
pub(crate) fn blocked(why: &str) {
    match current() {
        Some((sched, id)) => sched.blocked(id, why),
        None => std::thread::yield_now(),
    }
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Explore schedules of `f` (see the crate docs for the knobs).  Panics —
/// failed assertions inside `f`, or a suspected deadlock — abort the
/// exploration and re-surface on the calling thread, with the failing
/// seed printed for reproduction.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let iters = env_u64("LOOM_MAX_ITER", 96).max(1);
    let preemptions = env_u64("LOOM_MAX_PREEMPTIONS", 3);
    let base_seed = env_u64("LOOM_SEED", 0x6c6f_6f6d);
    let f = Arc::new(f);
    // PCT wants the execution length; use the previous execution's
    // operation count as the horizon for drawing preemption points.
    let mut horizon = 64u64;
    for iter in 0..iters {
        let seed = base_seed.wrapping_add(iter);
        let budget = if iter == 0 { 0 } else { preemptions };
        let sched = Arc::new(Scheduler::new(seed, budget, horizon));
        let root = sched.register();
        debug_assert_eq!(root, 0);
        let (s2, f2) = (Arc::clone(&sched), Arc::clone(&f));
        let handle = std::thread::spawn(move || {
            set_ctx(Arc::clone(&s2), root);
            s2.wait_first_turn(root);
            if let Err(p) = catch_unwind(AssertUnwindSafe(|| f2())) {
                s2.record_panic(p);
            }
            s2.finish(root);
        });
        sched.wait_all_finished();
        let _ = handle.join();
        let mut st = sched.lock();
        horizon = st.ops.max(1);
        if let Some(payload) = st.panic_payload.take() {
            drop(st);
            eprintln!(
                "loom (shim): schedule {iter} of {iters} failed \
                 (reproduce with LOOM_SEED={base_seed} LOOM_MAX_PREEMPTIONS={preemptions})"
            );
            resume_unwind(payload);
        }
    }
}
