//! Model-aware thread spawning.  Inside [`crate::model`], spawned threads
//! register with the schedule explorer and park until scheduled; outside a
//! model execution everything degrades to plain `std::thread`.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use crate::sched::{self, Scheduler};

/// Handle to a model thread; mirrors [`std::thread::JoinHandle`].
pub struct JoinHandle<T> {
    inner: std::thread::JoinHandle<Option<T>>,
    id: usize,
    sched: Option<Arc<Scheduler>>,
}

impl<T> JoinHandle<T> {
    /// Wait for the thread to finish, returning its result.  A panicking
    /// thread yields `Err` with an opaque payload, as in `std`.
    pub fn join(self) -> std::thread::Result<T> {
        if let Some(sched) = &self.sched {
            if let Some((cur, me)) = sched::current() {
                debug_assert!(Arc::ptr_eq(&cur, sched));
                drop(cur);
                sched.join_wait(me, self.id);
            }
        }
        match self.inner.join() {
            Ok(Some(v)) => Ok(v),
            Ok(None) => Err(Box::new("loom shim: model thread panicked".to_string())),
            Err(e) => Err(e),
        }
    }
}

/// Spawn a thread.  Inside a model execution the child becomes a model
/// thread: it parks until first scheduled and every instrumented operation
/// it performs is a schedule point.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match sched::current() {
        None => {
            let inner = std::thread::spawn(move || Some(f()));
            JoinHandle {
                inner,
                id: usize::MAX,
                sched: None,
            }
        }
        Some((sched, _me)) => {
            let id = sched.register();
            let s2 = Arc::clone(&sched);
            let inner = std::thread::spawn(move || {
                sched::set_ctx(Arc::clone(&s2), id);
                s2.wait_first_turn(id);
                let out = match catch_unwind(AssertUnwindSafe(f)) {
                    Ok(v) => Some(v),
                    Err(p) => {
                        s2.record_panic(p);
                        None
                    }
                };
                s2.finish(id);
                out
            });
            JoinHandle {
                inner,
                id,
                sched: Some(sched),
            }
        }
    }
}

/// Cooperative yield.  Inside a model execution this *always* hands
/// control to a runnable peer (loom's contract: the caller cannot progress
/// until someone else runs — the primitive spin-wait loops are built on);
/// outside one it is a plain OS yield.
pub fn yield_now() {
    match sched::current() {
        Some((sched, id)) => sched.yielded(id),
        None => std::thread::yield_now(),
    }
}
