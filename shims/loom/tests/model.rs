//! Self-tests for the loom shim: the explorer must pass correct code and
//! catch textbook interleaving bugs (lost updates, broken lock protocols).

use std::panic::{catch_unwind, AssertUnwindSafe};

use loom::sync::atomic::{AtomicU64, Ordering};
use loom::sync::{Arc, Mutex};
use loom::thread;

#[test]
fn atomic_counter_is_exact() {
    loom::model(|| {
        let n = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let n = Arc::clone(&n);
                thread::spawn(move || {
                    for _ in 0..2 {
                        n.fetch_add(1, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(n.load(Ordering::Relaxed), 6);
    });
}

#[test]
fn racy_read_modify_write_is_caught() {
    // Classic lost update: load-then-store is not atomic.  The explorer
    // must find a schedule where the two increments collapse into one.
    let result = catch_unwind(AssertUnwindSafe(|| {
        loom::model(|| {
            let n = Arc::new(AtomicU64::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let n = Arc::clone(&n);
                    thread::spawn(move || {
                        let v = n.load(Ordering::SeqCst);
                        n.store(v + 1, Ordering::SeqCst);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(n.load(Ordering::SeqCst), 2, "lost update");
        });
    }));
    assert!(result.is_err(), "shim failed to catch the lost update");
}

#[test]
fn mutex_protects_read_modify_write() {
    loom::model(|| {
        let n = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let n = Arc::clone(&n);
                thread::spawn(move || {
                    let mut g = n.lock().unwrap();
                    *g += 1;
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*n.lock().unwrap(), 3);
    });
}

#[test]
fn deadlock_is_reported() {
    // Two locks taken in opposite orders: some schedule must deadlock,
    // which the shim reports as a panic instead of hanging.
    let result = catch_unwind(AssertUnwindSafe(|| {
        loom::model(|| {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let t = thread::spawn(move || {
                let _ga = a2.lock().unwrap();
                let _gb = b2.lock().unwrap();
            });
            {
                let _gb = b.lock().unwrap();
                let _ga = a.lock().unwrap();
            }
            let _ = t.join();
        });
    }));
    assert!(
        result.is_err(),
        "shim failed to flag the lock-order inversion"
    );
}

#[test]
fn schedules_are_reproducible() {
    // Same seed, same body → the explorer visits identical schedules, so
    // an observation log must be identical across two runs.
    let trace = || {
        // The model body requires 'static, so collect through a channel.
        let (tx, rx) = std::sync::mpsc::channel::<u64>();
        loom::model(move || {
            let n = Arc::new(AtomicU64::new(0));
            let n2 = Arc::clone(&n);
            let t = thread::spawn(move || {
                n2.fetch_add(10, Ordering::SeqCst);
            });
            let seen = n.load(Ordering::SeqCst);
            t.join().unwrap();
            tx.send(seen).unwrap();
        });
        rx.try_iter().collect::<Vec<_>>()
    };
    let a = trace();
    let b = trace();
    assert_eq!(a, b);
    // Both orders (child before / after the parent's load) must occur.
    assert!(
        a.contains(&0) && a.contains(&10),
        "explorer never varied the schedule: {a:?}"
    );
}
