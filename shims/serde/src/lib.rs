//! Offline shim for `serde`.
//!
//! The build environment cannot reach crates.io, so this crate provides the
//! subset of serde the workspace relies on, built around a concrete JSON
//! data model instead of serde's visitor machinery:
//!
//! * [`Serialize`] — convert `self` into a [`Value`];
//! * [`Deserialize`] — reconstruct `Self` from a [`Value`];
//! * `#[derive(Serialize, Deserialize)]` — provided by the sibling
//!   `serde_derive` shim for named-field structs, tuple structs, and enums
//!   with unit/tuple variants (the shapes this workspace defines).
//!
//! `serde_json` (also shimmed) supplies the text round-trip: its parser
//! produces [`Value`]s and its writers consume them.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

mod value;

pub use value::Value;

/// Deserialization error: a human-readable description of the mismatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Shorthand constructor used by generated code.
pub fn de_err(msg: impl Into<String>) -> DeError {
    DeError(msg.into())
}

/// Types that can render themselves as a JSON [`Value`].
pub trait Serialize {
    /// The JSON value representing `self`.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a JSON [`Value`].
pub trait Deserialize: Sized {
    /// Reconstruct `Self`, or explain why `v` does not fit.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Look up a required object field — helper for derived `Deserialize` impls.
pub fn field<'v>(fields: &'v [(String, Value)], name: &str) -> Result<&'v Value, DeError> {
    fields
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| de_err(format!("missing field '{name}'")))
}

// ---------------------------------------------------------------------------
// Serialize impls for primitives and std containers.

macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::UInt(u) => Ok(*u as $t),
                    Value::Int(i) if *i >= 0 => Ok(*i as $t),
                    other => Err(de_err(format!(
                        "expected unsigned integer, found {}", other.kind()))),
                }
            }
        }
    )*};
}

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    other => Err(de_err(format!(
                        "expected integer, found {}", other.kind()))),
                }
            }
        }
    )*};
}

impl_ser_uint!(u8, u16, u32, u64, usize);
impl_ser_int!(i8, i16, i32, i64, isize);

macro_rules! impl_ser_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Float(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Float(x) => Ok(*x as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    other => Err(de_err(format!(
                        "expected number, found {}", other.kind()))),
                }
            }
        }
    )*};
}

impl_ser_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(de_err(format!("expected bool, found {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(de_err(format!("expected string, found {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(de_err(format!("expected array, found {}", other.kind()))),
        }
    }
}

macro_rules! impl_ser_tuple {
    ($(($($n:tt $t:ident),+))+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let Value::Array(items) = v else {
                    return Err(de_err(format!("expected array, found {}", v.kind())));
                };
                let expect = [$($n),+].len();
                if items.len() != expect {
                    return Err(de_err(format!(
                        "expected {expect}-tuple, found {} elements", items.len())));
                }
                Ok(($($t::from_value(&items[$n])?,)+))
            }
        }
    )+};
}

impl_ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-3i64).to_value()).unwrap(), -3);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(
            Option::<u32>::from_value(&7u32.to_value()).unwrap(),
            Some(7)
        );
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1u32, 2.5f64), (3, 4.5)];
        let round: Vec<(u32, f64)> = Deserialize::from_value(&v.to_value()).unwrap();
        assert_eq!(round, v);
    }

    #[test]
    fn type_mismatch_reports_kind() {
        let e = u64::from_value(&Value::Str("x".into())).unwrap_err();
        assert!(e.0.contains("string"), "{e}");
    }
}
