//! The JSON data model shared by the `serde` and `serde_json` shims.

/// A JSON value.
///
/// Integers keep their signedness (`UInt`/`Int`) so `u64` values above
/// `i64::MAX` survive a round trip; objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A negative integer.
    Int(i64),
    /// A non-negative integer.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// A short name of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// The object fields, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A lossy numeric view (integers and floats).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// An unsigned view of integer values.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(u) => Some(*u),
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// Member lookup on objects: `v.get("key")`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let v = Value::Object(vec![
            ("a".into(), Value::UInt(1)),
            (
                "b".into(),
                Value::Array(vec![Value::Null, Value::Bool(true)]),
            ),
        ]);
        assert_eq!(v.get("a").and_then(Value::as_u64), Some(1));
        assert_eq!(
            v.get("b").and_then(Value::as_array).map(<[Value]>::len),
            Some(2)
        );
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.kind(), "object");
    }
}
