//! Offline shim for `serde_json`.
//!
//! Text round-trip for the shimmed [`serde`] data model: a recursive-descent
//! JSON parser, compact and pretty writers, and the [`json!`] macro (keys
//! must be string literals; nested objects/arrays are built with nested
//! `json!` calls or any `Serialize` expression).

#![forbid(unsafe_code)]

use std::fmt;

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// Parse or serialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e.0)
    }
}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// Convert any [`Serialize`] value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(v: &T) -> Value {
    v.to_value()
}

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(v: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &v.to_value(), None, 0);
    Ok(out)
}

/// Serialize to an indented JSON string (two spaces, like `serde_json`).
pub fn to_string_pretty<T: Serialize + ?Sized>(v: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &v.to_value(), Some(2), 0);
    Ok(out)
}

/// Deserialize a `T` from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at offset {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

// ---------------------------------------------------------------------------
// Writer.

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // Rust's shortest round-trippable representation; force a
                // fractional marker so the value re-parses as a float.
                let s = f.to_string();
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null"); // serde_json's behavior for NaN/inf
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

// ---------------------------------------------------------------------------
// Parser.

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected '{}' at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid token at offset {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.eat_keyword("null", Value::Null),
            Some(b't') => self.eat_keyword("true", Value::Bool(true)),
            Some(b'f') => self.eat_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            other => Err(Error(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error("invalid UTF-8 in string".into()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            self.pos += 4;
                            // Surrogate pairs are not reconstructed; BMP only.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(Error(format!("unknown escape '\\{}'", other as char)))
                        }
                    }
                }
                _ => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error(format!("invalid number '{text}'")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error(format!("invalid number '{text}'")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error(format!("invalid number '{text}'")))
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected ',' or ']' at offset {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => {
                    return Err(Error(format!(
                        "expected ',' or '}}' at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }
}

/// Build a [`Value`] in place.  Keys must be string literals; values are any
/// `Serialize` expression (including nested `json!` calls).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({}) => { $crate::Value::Object(vec![]) };
    ({ $($k:literal : $v:expr),+ $(,)? }) => {
        $crate::Value::Object(vec![
            $(($k.to_string(), $crate::to_value(&$v))),+
        ])
    };
    ([ $($v:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![$($crate::to_value(&$v)),*])
    };
    ($v:expr) => { $crate::to_value(&$v) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        for text in ["null", "true", "42", "-7", "1.5", "\"hi\\n\""] {
            let v: Value = from_str(text).unwrap();
            let back = to_string(&v).unwrap();
            let v2: Value = from_str(&back).unwrap();
            assert_eq!(v, v2, "{text}");
        }
    }

    #[test]
    fn parses_nested_structures() {
        let v: Value = from_str(r#"{"a": [1, 2.5, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("c").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn pretty_output_indents() {
        let v = json!({ "k": 1u64, "list": [1u64, 2u64] });
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\n  \"k\": 1"), "{s}");
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn json_macro_shapes() {
        let v = json!({
            "id": "x",
            "points": vec![(1.0f64, 2.0f64)],
            "nested": json!({ "деep": true }),
        });
        assert_eq!(v.get("id").unwrap().as_str(), Some("x"));
        assert!(v.get("nested").unwrap().get("деep").is_some());
    }

    #[test]
    fn float_always_reparses_as_float() {
        let s = to_string(&Value::Float(2.0)).unwrap();
        assert_eq!(s, "2.0");
        let v: Value = from_str(&s).unwrap();
        assert_eq!(v, Value::Float(2.0));
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("12 34").is_err());
    }
}
