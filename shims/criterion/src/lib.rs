//! Offline shim for `criterion`.
//!
//! Implements the small slice of the criterion API the workspace benches
//! use (`benchmark_group`, `bench_with_input`, `bench_function`,
//! `BenchmarkId::from_parameter`, `Bencher::iter`, `criterion_group!`,
//! `criterion_main!`) as a plain wall-clock harness: each benchmark is
//! warmed up briefly, then timed over enough iterations to fill a short
//! measurement window, and the mean ns/iter is printed.  There is no
//! statistical analysis, HTML report, or baseline comparison.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` also resolves.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

const WARM_UP: Duration = Duration::from_millis(50);
const MEASURE: Duration = Duration::from_millis(300);

/// Identifies one parameterized benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id rendered from the sweep parameter alone.
    pub fn from_parameter<P: Display>(p: P) -> Self {
        BenchmarkId {
            label: p.to_string(),
        }
    }

    /// An id with both a function name and a parameter.
    pub fn new<S: Display, P: Display>(name: S, p: P) -> Self {
        BenchmarkId {
            label: format!("{name}/{p}"),
        }
    }
}

/// Passed to benchmark closures; `iter` runs and times the payload.
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled in by [`Bencher::iter`].
    ns_per_iter: f64,
    iters: u64,
}

impl Bencher {
    /// Time `f`, repeating it until the measurement window is filled.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: also estimates the cost of one call so the measured
        // batch size can be chosen up front.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARM_UP {
            std_black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let batch = ((MEASURE.as_secs_f64() / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000_000);

        let start = Instant::now();
        for _ in 0..batch {
            std_black_box(f());
        }
        let elapsed = start.elapsed();
        self.iters = batch;
        self.ns_per_iter = elapsed.as_nanos() as f64 / batch as f64;
    }
}

fn report(path: &str, b: &Bencher) {
    let ns = b.ns_per_iter;
    let human = if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    };
    println!("{path:<44} {human:>12}/iter  ({} iters)", b.iters);
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark over `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            ns_per_iter: 0.0,
            iters: 0,
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.label), &b);
        self
    }

    /// Run one unparameterized benchmark in this group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            ns_per_iter: 0.0,
            iters: 0,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &b);
        self
    }

    /// End the group (upstream flushes reports here; the shim prints
    /// eagerly, so this is a no-op kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// The benchmark driver handed to each `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _criterion: self,
        }
    }

    /// Run one standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            ns_per_iter: 0.0,
            iters: 0,
        };
        f(&mut b);
        report(name, &b);
        self
    }

    /// Upstream's config hook; the shim has no sampling config.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Collect benchmark functions into one named runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running each group (benches are built with `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher {
            ns_per_iter: 0.0,
            iters: 0,
        };
        b.iter(|| (0..100u64).sum::<u64>());
        assert!(b.iters > 0);
        assert!(b.ns_per_iter > 0.0);
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::from_parameter(64).label, "64");
        assert_eq!(BenchmarkId::new("f", 2).label, "f/2");
    }
}
