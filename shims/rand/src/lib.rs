//! Offline shim for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! this minimal, API-compatible replacement for the slice of `rand` 0.8 it
//! actually uses: `rngs::StdRng`, [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over half-open integer ranges, and
//! [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256** seeded through SplitMix64 — high-quality,
//! fast, and fully deterministic, which is all the experiments need
//! (placements are reproducible per seed; they just differ from upstream
//! `rand`'s ChaCha-based streams).

#![forbid(unsafe_code)]

use std::ops::Range;

/// Core trait: a source of random `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (the subset of `rand::SeedableRng` used here).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that `gen_range` can sample uniformly from a half-open range.
pub trait SampleUniform: Copy {
    /// A sample in `[lo, hi)`; `hi > lo` is the caller's obligation.
    fn sample(rng: &mut dyn FnMut() -> u64, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample(rng: &mut dyn FnMut() -> u64, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range on an empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                // Modulo bias is < 2^-64 per draw for the spans used here.
                let off = (rng() as u128 % span) as i128;
                (range.start as i128 + off) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        let mut draw = || self.next_u64();
        T::sample(&mut draw, range)
    }

    /// A random `bool`.
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256**.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state, as
            // recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Slice helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// In-place slice shuffling.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = rngs::StdRng::seed_from_u64(7);
        let mut b = rngs::StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = rngs::StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = rngs::StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = r.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = rngs::StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely to be identity");
    }
}
