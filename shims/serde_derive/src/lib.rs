//! Offline shim for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against
//! the shimmed `serde` traits (`to_value`/`from_value` over a JSON `Value`),
//! without `syn`/`quote`: the item is parsed directly from the
//! `proc_macro::TokenStream` and the impl is emitted as source text.
//!
//! Supported shapes — exactly the ones this workspace defines:
//!
//! * structs with named fields → JSON objects keyed by field name;
//! * tuple structs — one field serializes transparently (newtype), several
//!   serialize as an array;
//! * enums with unit variants (→ the variant name as a string) and tuple
//!   variants (→ `{"Variant": payload}` with a lone payload unwrapped).
//!
//! Generics and struct-variant enums are rejected with a compile error.

#![forbid(unsafe_code)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed shape of the derive input.
enum Shape {
    /// Named-field struct: field names in declaration order.
    NamedStruct(Vec<String>),
    /// Tuple struct with this many fields.
    TupleStruct(usize),
    /// Enum: `(variant name, tuple arity)` — arity 0 is a unit variant.
    Enum(Vec<(String, usize)>),
}

struct Item {
    name: String,
    shape: Shape,
}

/// Skip attributes (`#[...]`, including doc comments) and visibility
/// (`pub`, `pub(...)`) from the front of `toks`, starting at `i`.
fn skip_attrs_and_vis(toks: &[TokenTree], mut i: usize) -> usize {
    loop {
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` then the bracketed attribute body.
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = toks.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Count comma-separated entries at angle-bracket depth 0 of a type list
/// (tuple-struct bodies, tuple-variant payloads).  `Vec<Option<usize>>`
/// style commas inside `<...>` do not split entries.
fn count_top_level_entries(toks: &[TokenTree]) -> usize {
    let mut depth: i32 = 0;
    let mut entries = 0usize;
    let mut saw_tokens = false;
    for t in toks {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                saw_tokens = true;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                entries += 1;
                saw_tokens = false;
            }
            _ => saw_tokens = true,
        }
    }
    entries + usize::from(saw_tokens)
}

/// Parse the field names of a named-field struct body.
fn parse_named_fields(toks: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut names = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        i = skip_attrs_and_vis(toks, i);
        let Some(TokenTree::Ident(name)) = toks.get(i) else {
            return Err(format!(
                "expected field name, found {:?}",
                toks.get(i).map(std::string::ToString::to_string)
            ));
        };
        names.push(name.to_string());
        i += 1;
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                return Err(format!(
                    "expected ':' after field, found {:?}",
                    other.map(std::string::ToString::to_string)
                ))
            }
        }
        // Consume the type: everything up to the next comma at angle depth 0.
        let mut depth: i32 = 0;
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    Ok(names)
}

/// Parse enum variants: names plus tuple arity (0 for unit variants).
fn parse_variants(toks: &[TokenTree]) -> Result<Vec<(String, usize)>, String> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        i = skip_attrs_and_vis(toks, i);
        if i >= toks.len() {
            break;
        }
        let Some(TokenTree::Ident(name)) = toks.get(i) else {
            return Err(format!(
                "expected variant name, found {:?}",
                toks.get(i).map(std::string::ToString::to_string)
            ));
        };
        let name = name.to_string();
        i += 1;
        let arity = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                i += 1;
                count_top_level_entries(&inner)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                return Err(format!(
                    "struct variant '{name}' is not supported by the serde shim"
                ));
            }
            _ => 0,
        };
        variants.push((name, arity));
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            None => break,
            other => {
                return Err(format!(
                    "expected ',' after variant, found {:?}",
                    other.map(std::string::ToString::to_string)
                ))
            }
        }
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&toks, 0);
    let kind = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => {
            return Err(format!(
                "expected 'struct' or 'enum', found {:?}",
                other.map(std::string::ToString::to_string)
            ))
        }
    };
    i += 1;
    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => {
            return Err(format!(
                "expected item name, found {:?}",
                other.map(std::string::ToString::to_string)
            ))
        }
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "generic type '{name}' is not supported by the serde shim"
            ));
        }
    }
    let shape = match (kind.as_str(), toks.get(i)) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            Shape::NamedStruct(parse_named_fields(&inner)?)
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            Shape::TupleStruct(count_top_level_entries(&inner))
        }
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            Shape::Enum(parse_variants(&inner)?)
        }
        _ => return Err(format!("unsupported item shape for '{name}'")),
    };
    Ok(Item { name, shape })
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("literal compile_error")
}

/// `#[derive(Serialize)]`: `impl serde::Serialize` via `to_value`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(it) => it,
        Err(e) => return compile_error(&e),
    };
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| format!("({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!("::serde::Value::Object(vec![{}])", pairs.join(", "))
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, arity)| match arity {
                    0 => format!("{name}::{v} => ::serde::Value::Str({v:?}.to_string()),"),
                    1 => format!(
                        "{name}::{v}(x0) => ::serde::Value::Object(vec![({v:?}.to_string(), \
                         ::serde::Serialize::to_value(x0))]),"
                    ),
                    n => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Serialize::to_value(x{i})"))
                            .collect();
                        format!(
                            "{name}::{v}({}) => ::serde::Value::Object(vec![({v:?}.to_string(), \
                             ::serde::Value::Array(vec![{}]))]),",
                            binds.join(", "),
                            items.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("generated Serialize impl parses")
}

/// `#[derive(Deserialize)]`: `impl serde::Deserialize` via `from_value`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(it) => it,
        Err(e) => return compile_error(&e),
    };
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(::serde::field(fields, {f:?})?)?,"
                    )
                })
                .collect();
            format!(
                "let fields = v.as_object().ok_or_else(|| ::serde::de_err(format!(\
                     \"{name}: expected object, found {{}}\", v.kind())))?;\n\
                 Ok({name} {{ {} }})",
                inits.join(" ")
            )
        }
        Shape::TupleStruct(1) => {
            format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Shape::TupleStruct(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "let items = v.as_array().ok_or_else(|| ::serde::de_err(format!(\
                     \"{name}: expected array, found {{}}\", v.kind())))?;\n\
                 if items.len() != {n} {{ return Err(::serde::de_err(format!(\
                     \"{name}: expected {n} elements, found {{}}\", items.len()))); }}\n\
                 Ok({name}({}))",
                inits.join(", ")
            )
        }
        Shape::Enum(variants) => {
            let str_arms: Vec<String> = variants
                .iter()
                .filter(|(_, arity)| *arity == 0)
                .map(|(v, _)| format!("{v:?} => Ok({name}::{v}),"))
                .collect();
            let obj_arms: Vec<String> = variants
                .iter()
                .filter(|(_, arity)| *arity > 0)
                .map(|(v, arity)| {
                    if *arity == 1 {
                        format!("{v:?} => Ok({name}::{v}(::serde::Deserialize::from_value(payload)?)),")
                    } else {
                        let inits: Vec<String> = (0..*arity)
                            .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                            .collect();
                        format!(
                            "{v:?} => {{\n\
                                 let items = payload.as_array().ok_or_else(|| ::serde::de_err(\
                                     \"{name}::{v}: expected array payload\".to_string()))?;\n\
                                 if items.len() != {arity} {{ return Err(::serde::de_err(format!(\
                                     \"{name}::{v}: expected {arity} elements, found {{}}\", items.len()))); }}\n\
                                 Ok({name}::{v}({}))\n\
                             }}",
                            inits.join(", ")
                        )
                    }
                })
                .collect();
            format!(
                "match v {{\n\
                     ::serde::Value::Str(s) => match s.as_str() {{\n\
                         {}\n\
                         other => Err(::serde::de_err(format!(\"unknown {name} variant '{{other}}'\"))),\n\
                     }},\n\
                     ::serde::Value::Object(fields) if fields.len() == 1 => {{\n\
                         let (tag, payload) = &fields[0];\n\
                         let _ = payload;\n\
                         match tag.as_str() {{\n\
                             {}\n\
                             other => Err(::serde::de_err(format!(\"unknown {name} variant '{{other}}'\"))),\n\
                         }}\n\
                     }},\n\
                     other => Err(::serde::de_err(format!(\"{name}: expected variant, found {{}}\", other.kind()))),\n\
                 }}",
                str_arms.join("\n"),
                obj_arms.join("\n")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("generated Deserialize impl parses")
}
